//! Tag hardware complexity: the transistor inventory behind Table 3.
//!
//! §5.3: the authors implement LF-Backscatter and Buzz in Verilog and
//! compare transistor counts against a published EPC Gen 2 tag design
//! (Yeager et al., the paper's reference \[23\]):
//!
//! | design      | w/o FIFO | with 1 kbit FIFO |
//! |-------------|----------|------------------|
//! | RFID chip   | 22 704   | 34 992           |
//! | Buzz        |  1 792   | 14 080           |
//! | LF          |    176   |    176           |
//!
//! The FIFO contribution is recoverable from the table itself:
//! 34 992 − 22 704 = 14 080 − 1 792 = 12 288 = 1 024 bits × 12 T/bit —
//! a 12-transistor dual-port SRAM-with-pointers cell budget. We reproduce
//! the totals from a named component inventory so the counts are auditable
//! and the ablations (e.g. "what if Buzz dropped the PN generator") are
//! possible.

/// Transistors for a FIFO of `bits` bits at the paper-implied 12 T/bit.
pub fn fifo_transistors(bits: usize) -> usize {
    12 * bits
}

/// A named logic block and its transistor count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Component {
    /// Block name.
    pub name: &'static str,
    /// Transistor count.
    pub transistors: usize,
}

/// The component inventory of one tag design.
#[derive(Debug, Clone)]
pub struct HardwareInventory {
    /// Human-readable design name.
    pub design: &'static str,
    /// Logic blocks excluding any FIFO.
    pub components: Vec<Component>,
    /// FIFO size in bits (0 = bufferless).
    pub fifo_bits: usize,
}

impl HardwareInventory {
    /// LF-Backscatter's tag (Table 3: 176 T, no FIFO): a clock divider to
    /// derive the bit clock from the sensing clock, an NRZ sequencer that
    /// shifts sensed bits straight out, and the RF transistor driver.
    /// "LF-Backscatter clocks out bits as and when they are sampled" —
    /// no buffer, no receiver, no CRC engine on the minimal tag.
    pub fn lf_backscatter() -> Self {
        HardwareInventory {
            design: "LF-Backscatter",
            components: vec![
                Component {
                    name: "clock divider",
                    transistors: 72,
                },
                Component {
                    name: "NRZ sequencer",
                    transistors: 88,
                },
                Component {
                    name: "RF driver",
                    transistors: 16,
                },
            ],
            fifo_bits: 0,
        }
    }

    /// Buzz's tag (Table 3: 1 792 T + 1 kbit FIFO): lock-step transmission
    /// needs a PN-sequence generator for the random combinations, sync
    /// logic to stay bit-aligned with the network, a retransmission
    /// controller, and a receive envelope detector for the reader's
    /// go-to-next-message signal. The FIFO holds samples "so that samples
    /// are not lost while bits are re-transmitted in lock-step".
    pub fn buzz() -> Self {
        HardwareInventory {
            design: "Buzz",
            components: vec![
                Component {
                    name: "PN-sequence generator",
                    transistors: 496,
                },
                Component {
                    name: "lock-step sync",
                    transistors: 640,
                },
                Component {
                    name: "retransmit controller",
                    transistors: 488,
                },
                Component {
                    name: "clock divider",
                    transistors: 72,
                },
                Component {
                    name: "RX envelope detector",
                    transistors: 80,
                },
                Component {
                    name: "RF driver",
                    transistors: 16,
                },
            ],
            fifo_bits: 1024,
        }
    }

    /// The EPC Gen 2 RFID chip (Table 3: 22 704 T + 1 kbit FIFO when used
    /// as a sensor tag), after Yeager et al. (the paper's \[23\]): full command decoder,
    /// RN16 PRNG, CRC-16 engine, the Gen 2 inventory state machine, slot
    /// counter, demodulator and modulator front ends.
    pub fn epc_gen2() -> Self {
        HardwareInventory {
            design: "EPC Gen 2 RFID",
            components: vec![
                Component {
                    name: "command decoder",
                    transistors: 8192,
                },
                Component {
                    name: "RN16 PRNG",
                    transistors: 2048,
                },
                Component {
                    name: "CRC-16 engine",
                    transistors: 1024,
                },
                Component {
                    name: "inventory FSM",
                    transistors: 6400,
                },
                Component {
                    name: "slot counter",
                    transistors: 1024,
                },
                Component {
                    name: "demodulator",
                    transistors: 2016,
                },
                Component {
                    name: "modulator/driver",
                    transistors: 2000,
                },
            ],
            fifo_bits: 1024,
        }
    }

    /// Total transistors excluding the FIFO (Table 3's left column).
    pub fn logic_transistors(&self) -> usize {
        self.components.iter().map(|c| c.transistors).sum()
    }

    /// Total transistors including the FIFO (Table 3's right column).
    pub fn total_transistors(&self) -> usize {
        self.logic_transistors() + fifo_transistors(self.fifo_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_counts_reproduced_exactly() {
        let lf = HardwareInventory::lf_backscatter();
        assert_eq!(lf.logic_transistors(), 176);
        assert_eq!(lf.total_transistors(), 176);

        let buzz = HardwareInventory::buzz();
        assert_eq!(buzz.logic_transistors(), 1_792);
        assert_eq!(buzz.total_transistors(), 14_080);

        let gen2 = HardwareInventory::epc_gen2();
        assert_eq!(gen2.logic_transistors(), 22_704);
        assert_eq!(gen2.total_transistors(), 34_992);
    }

    #[test]
    fn fifo_cost_matches_table3_delta() {
        // 34 992 − 22 704 = 14 080 − 1 792 = 12 288 = 12 T/bit × 1 024.
        assert_eq!(fifo_transistors(1024), 12_288);
        assert_eq!(34_992 - 22_704, fifo_transistors(1024));
        assert_eq!(14_080 - 1_792, fifo_transistors(1024));
    }

    #[test]
    fn order_of_magnitude_claims() {
        // §5.3: "LF-Backscatter requires an order of magnitude fewer
        // transistors than Buzz, and two orders of magnitude fewer
        // transistors than EPC Gen 2".
        let lf = HardwareInventory::lf_backscatter().logic_transistors() as f64;
        let buzz = HardwareInventory::buzz().logic_transistors() as f64;
        let gen2 = HardwareInventory::epc_gen2().logic_transistors() as f64;
        assert!(buzz / lf >= 10.0);
        assert!(gen2 / lf >= 100.0);
    }

    #[test]
    fn lf_tag_has_no_receive_path() {
        let lf = HardwareInventory::lf_backscatter();
        assert!(
            !lf.components
                .iter()
                .any(|c| c.name.to_lowercase().contains("rx")
                    || c.name.to_lowercase().contains("demod")),
            "the laissez-faire tag must not need a receiver"
        );
    }
}
