//! The tag power model behind Fig. 13 (energy efficiency in bits/µJ).
//!
//! The paper obtains power "from a SPICE simulation of our Verilog code".
//! Without the authors' netlists we use a standard switched-capacitance
//! abstraction calibrated to the paper's operating points (DESIGN.md §6):
//!
//! ```text
//! P = P_standby + P_rx + E_toggle · N_effective · f_clock
//! ```
//!
//! * `E_toggle` — energy per effective transistor toggle, **calibrated**
//!   so the LF tag at 100 kbps sits at the paper's "tens of µW"
//!   (≈31 µW ⇒ ≈3.2 k bits/µJ, matching Fig. 13's LF level);
//! * `N_effective` — the design's logic transistors weighted by activity
//!   (a FIFO only clocks one row per access; a Gen 2 command decoder
//!   idles between commands);
//! * `P_rx` — receiver/demodulator power for designs that must listen
//!   (Buzz's lock-step sync, Gen 2's command decoding); the LF tag has no
//!   receive path at all;
//! * `P_standby` — the low-drift clock source (§3.6 budgets a 1.2 µW RTC).

use crate::hardware::{fifo_transistors, HardwareInventory};

/// Which protocol's tag hardware is being powered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// The paper's contribution.
    LfBackscatter,
    /// Buzz (Wang et al., SIGCOMM'12).
    Buzz,
    /// Stripped EPC Gen 2 TDMA.
    EpcGen2,
}

/// Calibrated switched-capacitance power model.
#[derive(Debug, Clone, Copy)]
pub struct PowerModel {
    /// Energy per effective transistor toggle (J). Calibration anchor.
    pub energy_per_toggle_j: f64,
    /// Standby power of the clock source (W) — §3.6's 1.2 µW RTC class.
    pub standby_w: f64,
    /// Receive-path power for Buzz's lock-step sync (W).
    pub buzz_rx_w: f64,
    /// Receive-path power for Gen 2 command decoding (W).
    pub gen2_rx_w: f64,
    /// Activity factor of general logic in Buzz (PN generator + sync run
    /// only around transmissions).
    pub buzz_logic_activity: f64,
    /// Activity factor of Gen 2 logic (command decoder and FSM mostly
    /// idle between reader commands).
    pub gen2_logic_activity: f64,
    /// Activity factor of a FIFO (one row toggles per access).
    pub fifo_activity: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            energy_per_toggle_j: 1.7e-12,
            standby_w: 1.2e-6,
            buzz_rx_w: 20e-6,
            gen2_rx_w: 100e-6,
            buzz_logic_activity: 0.20,
            gen2_logic_activity: 0.02,
            fifo_activity: 0.005,
        }
    }
}

impl PowerModel {
    /// Effective switching transistor count of a protocol's tag.
    fn effective_transistors(&self, protocol: Protocol) -> f64 {
        match protocol {
            Protocol::LfBackscatter => {
                HardwareInventory::lf_backscatter().logic_transistors() as f64
            }
            Protocol::Buzz => {
                let hw = HardwareInventory::buzz();
                hw.logic_transistors() as f64 * self.buzz_logic_activity
                    + fifo_transistors(hw.fifo_bits) as f64 * self.fifo_activity
            }
            Protocol::EpcGen2 => {
                let hw = HardwareInventory::epc_gen2();
                hw.logic_transistors() as f64 * self.gen2_logic_activity
                    + fifo_transistors(hw.fifo_bits) as f64 * self.fifo_activity
            }
        }
    }

    /// Receive-path power of a protocol's tag (W). Zero for LF: the
    /// laissez-faire tag never listens.
    pub fn rx_power_w(&self, protocol: Protocol) -> f64 {
        match protocol {
            Protocol::LfBackscatter => 0.0,
            Protocol::Buzz => self.buzz_rx_w,
            Protocol::EpcGen2 => self.gen2_rx_w,
        }
    }

    /// Total tag power (W) while operating with bit clock `clock_bps`.
    ///
    /// For LF and Buzz the bit clock equals the transmit bitrate; for
    /// Gen 2 the tag logic is clocked at the link rate whenever the
    /// inventory round is active.
    pub fn tag_power_w(&self, protocol: Protocol, clock_bps: f64) -> f64 {
        self.standby_w
            + self.rx_power_w(protocol)
            + self.energy_per_toggle_j * self.effective_transistors(protocol) * clock_bps
    }

    /// Energy per transmitted-channel bit (J/bit) at `clock_bps`.
    pub fn energy_per_bit_j(&self, protocol: Protocol, clock_bps: f64) -> f64 {
        self.tag_power_w(protocol, clock_bps) / clock_bps
    }

    /// Fig. 13's metric: *useful* bits per µJ, given the goodput each node
    /// actually achieved (protocol overheads and retransmissions make
    /// goodput < clock rate) while its radio clocked at `clock_bps`.
    pub fn efficiency_bits_per_uj(
        &self,
        protocol: Protocol,
        node_goodput_bps: f64,
        clock_bps: f64,
    ) -> f64 {
        node_goodput_bps / (self.tag_power_w(protocol, clock_bps) * 1e6)
    }
}

#[cfg(test)]
mod tests {
    // Tests assert bit-exact values deliberately: the arithmetic under test
    // must be exact, not approximate.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn lf_at_100kbps_is_tens_of_microwatts() {
        let m = PowerModel::default();
        let p = m.tag_power_w(Protocol::LfBackscatter, 100e3);
        assert!(
            (20e-6..60e-6).contains(&p),
            "LF tag power {p} W out of the paper's 'tens of µW'"
        );
    }

    #[test]
    fn lf_efficiency_matches_fig13_level() {
        // Fig. 13 shows LF around 3 000 bits/µJ at full goodput.
        let m = PowerModel::default();
        let eff = m.efficiency_bits_per_uj(Protocol::LfBackscatter, 100e3, 100e3);
        assert!((2_000.0..4_500.0).contains(&eff), "LF efficiency {eff}");
    }

    #[test]
    fn protocol_power_ordering() {
        let m = PowerModel::default();
        let lf = m.tag_power_w(Protocol::LfBackscatter, 100e3);
        let buzz = m.tag_power_w(Protocol::Buzz, 100e3);
        let gen2 = m.tag_power_w(Protocol::EpcGen2, 100e3);
        assert!(lf < buzz && buzz < gen2);
    }

    #[test]
    fn lf_tag_never_listens() {
        let m = PowerModel::default();
        assert_eq!(m.rx_power_w(Protocol::LfBackscatter), 0.0);
        assert!(m.rx_power_w(Protocol::Buzz) > 0.0);
        assert!(m.rx_power_w(Protocol::EpcGen2) > 0.0);
    }

    #[test]
    fn low_rate_tags_approach_standby_power() {
        // The §1 motivating example: a 1 Hz-class sensor must sit at a few
        // µW for battery-less operation — the power floor is the RTC, not
        // the radio.
        let m = PowerModel::default();
        let p = m.tag_power_w(Protocol::LfBackscatter, 500.0);
        assert!(p < 2e-6, "low-rate LF tag burns {p} W");
    }

    #[test]
    fn energy_per_bit_decreases_with_rate_for_lf() {
        // Standby amortizes over more bits at higher rates.
        let m = PowerModel::default();
        let slow = m.energy_per_bit_j(Protocol::LfBackscatter, 1e3);
        let fast = m.energy_per_bit_j(Protocol::LfBackscatter, 100e3);
        assert!(fast < slow);
    }

    #[test]
    fn efficiency_scales_with_goodput() {
        let m = PowerModel::default();
        let full = m.efficiency_bits_per_uj(Protocol::Buzz, 100e3, 100e3);
        let half = m.efficiency_bits_per_uj(Protocol::Buzz, 50e3, 100e3);
        assert!((full / half - 2.0).abs() < 1e-9);
    }
}
