//! The laissez-faire tag: blind, bufferless, clock-driven transmission.
//!
//! §1's design target: "an extremely low-power tag that is virtually free
//! of any computational logic — it senses and immediately transmits the
//! digitized signal oblivious to any other wireless traffic. Such a design
//! would need no decoding, no MAC, no packet buffers, and no high-speed RF
//! oscillators."
//!
//! Per epoch the tag: (1) waits for its comparator to fire after the
//! carrier rises (the natural random offset, [`crate::comparator`]);
//! (2) clocks its frame bits out at its own rate — a multiple of the base
//! rate, with its crystal's drift and jitter ([`crate::clock`]); (3) goes
//! quiet. The output is the toggle-event stream the air synthesizer
//! ([`lf_channel::air`]) consumes, plus the ground truth the experiment
//! harness scores against.

use crate::clock::ClockModel;
use crate::comparator::Comparator;
use crate::frame::Frame;
use lf_channel::air::{nrz_events, ToggleEvent};
use lf_types::{BitRate, BitVec, SampleRate, TagId};
use rand::Rng;

/// Static configuration of one physical tag.
#[derive(Debug, Clone)]
pub struct TagConfig {
    /// The simulator-internal identity.
    pub id: TagId,
    /// The tag's transmit rate (a multiple of the deployment base rate,
    /// §3.2's one restriction).
    pub rate: BitRate,
    /// The tag's crystal.
    pub clock: ClockModel,
    /// The tag's carrier-detect circuit.
    pub comparator: Comparator,
}

impl TagConfig {
    /// Draws a physical tag: crystal within `ppm` (paper part: 150),
    /// comparator with ±20 % RC tolerance.
    pub fn draw<R: Rng>(id: TagId, rate: BitRate, ppm: f64, rng: &mut R) -> Self {
        TagConfig {
            id,
            rate,
            clock: ClockModel::crystal(ppm, rng),
            comparator: Comparator::draw(0.2, rng),
        }
    }
}

/// One epoch's realized transmission.
#[derive(Debug, Clone)]
pub struct EpochPlan {
    /// Which tag this plan belongs to.
    pub id: TagId,
    /// Start offset in samples after the carrier rose.
    pub offset_samples: f64,
    /// The nominal bit period in samples (what the reader's rate plan
    /// implies).
    pub nominal_period_samples: f64,
    /// The actual bit period in samples (nominal × (1 + drift)).
    pub actual_period_samples: f64,
    /// The bits clocked out, in order (ground truth for scoring).
    pub bits: BitVec,
    /// The antenna toggle events.
    pub events: Vec<ToggleEvent>,
}

/// A laissez-faire tag.
#[derive(Debug, Clone)]
pub struct LfTag {
    config: TagConfig,
}

impl LfTag {
    /// Wraps a configuration.
    pub fn new(config: TagConfig) -> Self {
        LfTag { config }
    }

    /// The tag's configuration.
    pub fn config(&self) -> &TagConfig {
        &self.config
    }

    /// Plans one epoch transmitting exactly `bits` (already framed).
    ///
    /// `base_bps` is the deployment base rate; the epoch's carrier is
    /// assumed to rise at sample 0 of the capture.
    pub fn plan_epoch<R: Rng>(
        &self,
        bits: BitVec,
        sample_rate: SampleRate,
        base_bps: f64,
        rng: &mut R,
    ) -> EpochPlan {
        let cfg = &self.config;
        let nominal_period = sample_rate.samples_per_bit(cfg.rate.bps(base_bps));
        let actual_period = cfg.clock.actual_period(nominal_period);
        let offset = cfg.comparator.epoch_delay_s(rng) * sample_rate.sps();
        let clock = cfg.clock;
        let sps = sample_rate.sps();
        // Pre-draw jitter for every potential boundary so the closure is
        // pure (nrz_events may evaluate boundaries in any pattern).
        let jitter: Vec<f64> = (0..=bits.len()).map(|_| std_normal(rng)).collect();
        let bools: Vec<bool> = bits.iter().collect();
        let events = nrz_events(&bools, offset, nominal_period, |k| {
            clock.timing_error_samples(k, nominal_period, sps, jitter[k])
        });
        EpochPlan {
            id: cfg.id,
            offset_samples: offset,
            nominal_period_samples: nominal_period,
            actual_period_samples: actual_period,
            bits,
            events,
        }
    }

    /// Plans an epoch that streams `frame` repeatedly for the whole epoch
    /// (`epoch_samples` long): the data-rich-sensor mode of the throughput
    /// experiments. Returns the plan and the number of complete frames
    /// that fit.
    pub fn plan_streaming_epoch<R: Rng>(
        &self,
        frame: &Frame,
        epoch_samples: usize,
        sample_rate: SampleRate,
        base_bps: f64,
        rng: &mut R,
    ) -> (EpochPlan, usize) {
        let cfg = &self.config;
        let period = sample_rate.samples_per_bit(cfg.rate.bps(base_bps));
        let offset_estimate = cfg.comparator.nominal_delay_s() * sample_rate.sps();
        let budget_bits = ((epoch_samples as f64 - offset_estimate) / period)
            .floor()
            .max(0.0) as usize;
        let frame_bits = frame.to_bits();
        let n_frames = budget_bits / frame_bits.len();
        let mut bits = BitVec::with_capacity(n_frames * frame_bits.len());
        for _ in 0..n_frames {
            bits.extend_from(&frame_bits);
        }
        (self.plan_epoch(bits, sample_rate, base_bps, rng), n_frames)
    }
}

/// Standard normal variate via Box–Muller (uncached; jitter draws are not
/// on a hot path).
fn std_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    (-2.0 * u1.ln()).sqrt() * u2.cos()
}

#[cfg(test)]
mod tests {
    // Tests assert bit-exact values deliberately: the arithmetic under test
    // must be exact, not approximate.
    #![allow(clippy::float_cmp)]

    use super::*;
    use lf_types::Epc96;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_tag(rate_multiple: u32) -> LfTag {
        LfTag::new(TagConfig {
            id: TagId(0),
            rate: BitRate::from_multiple(rate_multiple).unwrap(),
            clock: ClockModel::ideal(),
            comparator: Comparator::fixed(10e-6),
        })
    }

    #[test]
    fn plan_epoch_basic_timing() {
        let tag = test_tag(1000); // 100 kbps at base 100
        let mut rng = StdRng::seed_from_u64(1);
        let bits = BitVec::from_str_binary("1010");
        let plan = tag.plan_epoch(bits, SampleRate::USRP_N210, 100.0, &mut rng);
        assert_eq!(plan.nominal_period_samples, 250.0);
        assert_eq!(plan.actual_period_samples, 250.0);
        // Offset = 10 µs · 25 Msps = 250 samples.
        assert!((plan.offset_samples - 250.0).abs() < 1e-9);
        // Bits 1010: rise@250, fall@500, rise@750, fall@1000.
        let times: Vec<f64> = plan.events.iter().map(|e| e.time).collect();
        let expected = [250.0, 500.0, 750.0, 1000.0];
        assert_eq!(times.len(), expected.len());
        for (t, e) in times.iter().zip(expected) {
            assert!((t - e).abs() < 1e-9, "edge at {t}, expected {e}");
        }
    }

    #[test]
    fn drift_shifts_edge_times() {
        let mut cfg = test_tag(1000).config().clone();
        cfg.clock = ClockModel {
            drift: 1e-3, // exaggerated for visibility
            jitter_std_s: 0.0,
        };
        let tag = LfTag::new(cfg);
        let mut rng = StdRng::seed_from_u64(1);
        let bits: BitVec = (0..100).map(|k| k % 2 == 0).collect();
        let plan = tag.plan_epoch(bits, SampleRate::USRP_N210, 100.0, &mut rng);
        // Bits alternate 1,0,… and end in 0, so the final edge is the fall
        // at boundary k=99. It drifts by k·P·1e-3 = 24.75 samples.
        let last = plan.events.last().unwrap().time;
        let expected = 250.0 + 99.0 * 250.0 + 24.75;
        assert!(
            (last - expected).abs() < 1e-6,
            "last edge {last} vs {expected}"
        );
    }

    #[test]
    fn streaming_epoch_fills_with_frames() {
        let tag = test_tag(1000);
        let mut rng = StdRng::seed_from_u64(2);
        let frame = Frame::identification(Epc96::for_tag(0));
        // 1 ms epoch at 25 Msps = 25 000 samples = 100 bits minus offset.
        let (plan, n_frames) =
            tag.plan_streaming_epoch(&frame, 200_000, SampleRate::USRP_N210, 100.0, &mut rng);
        // 200 000 samples = 800 bit slots − 1 offset bit = 799 → 7 frames
        // of 102 bits.
        assert_eq!(n_frames, 7);
        assert_eq!(plan.bits.len(), 7 * frame.to_bits().len());
    }

    #[test]
    fn streaming_epoch_too_short_for_any_frame() {
        let tag = test_tag(1000);
        let mut rng = StdRng::seed_from_u64(3);
        let frame = Frame::identification(Epc96::for_tag(0));
        let (plan, n_frames) =
            tag.plan_streaming_epoch(&frame, 1000, SampleRate::USRP_N210, 100.0, &mut rng);
        assert_eq!(n_frames, 0);
        assert!(plan.bits.is_empty());
        assert!(plan.events.is_empty());
    }

    #[test]
    fn drawn_tags_have_distinct_offsets() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut offsets = Vec::new();
        for n in 0..8 {
            let cfg = TagConfig::draw(
                TagId(n),
                BitRate::from_multiple(1000).unwrap(),
                150.0,
                &mut rng,
            );
            let tag = LfTag::new(cfg);
            let plan = tag.plan_epoch(
                BitVec::from_str_binary("1"),
                SampleRate::USRP_N210,
                100.0,
                &mut rng,
            );
            offsets.push(plan.offset_samples);
        }
        offsets.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // All 8 tags separated by more than an edge width.
        for w in offsets.windows(2) {
            assert!(w[1] - w[0] > 3.0, "offsets too close: {w:?}");
        }
    }

    #[test]
    fn events_are_sorted() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = TagConfig::draw(
            TagId(0),
            BitRate::from_multiple(1000).unwrap(),
            150.0,
            &mut rng,
        );
        let tag = LfTag::new(cfg);
        let bits: BitVec = (0..500).map(|k| (k * 13 % 7) < 3).collect();
        let plan = tag.plan_epoch(bits, SampleRate::USRP_N210, 100.0, &mut rng);
        assert!(plan.events.windows(2).all(|w| w[0].time <= w[1].time));
    }
}
