//! The tag bit clock: drift and jitter.
//!
//! §4.1: "Our decoding method can tolerate roughly 200 ppm of clock drift,
//! so we need to use an external low-drift crystal oscillator rather than
//! the built-in internal DCO on the Moo which has a typical drift of
//! 40,000 ppm … The clock we use has a typical drift of 150 ppm."
//!
//! Drift matters because it accumulates: at 100 kbps a 150 ppm fast crystal
//! gains 1.5 bit periods every 10 000 bits, so the reader cannot decode by
//! folding alone — it must *track* each stream's period (lf-core does).

use rand::Rng;

/// A tag's bit-clock error model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockModel {
    /// Fractional frequency error: the actual bit period is
    /// `nominal · (1 + drift)`. Drawn once per crystal (a physical part
    /// property), typically within ±150e-6.
    pub drift: f64,
    /// Standard deviation of white per-edge timing jitter, in seconds.
    pub jitter_std_s: f64,
}

impl ClockModel {
    /// An ideal clock (tests and analytic baselines).
    pub fn ideal() -> Self {
        ClockModel {
            drift: 0.0,
            jitter_std_s: 0.0,
        }
    }

    /// Draws a crystal matching the paper's external oscillator: drift
    /// uniform in ±`ppm`·1e-6 (150 ppm default part) and ~2 ns rms edge
    /// jitter.
    pub fn crystal<R: Rng>(ppm: f64, rng: &mut R) -> Self {
        ClockModel {
            drift: rng.gen_range(-ppm..=ppm) * 1e-6,
            jitter_std_s: 2e-9,
        }
    }

    /// The Moo's internal DCO (40 000 ppm class) — included to demonstrate
    /// *why* the paper required the external crystal: streams decoded with
    /// this clock fall apart (see lf-core's drift-tolerance tests).
    pub fn internal_dco<R: Rng>(rng: &mut R) -> Self {
        ClockModel {
            drift: rng.gen_range(-40_000.0..=40_000.0) * 1e-6,
            jitter_std_s: 50e-9,
        }
    }

    /// The actual bit period in samples for a nominal period.
    pub fn actual_period(&self, nominal_period_samples: f64) -> f64 {
        nominal_period_samples * (1.0 + self.drift)
    }

    /// Cumulative timing error at bit boundary `k`, in samples, for a
    /// nominal period and sample rate: linear drift accumulation plus white
    /// jitter. `jitter_draw` is a standard-normal variate supplied by the
    /// caller (so the caller controls seeding).
    pub fn timing_error_samples(
        &self,
        k: usize,
        nominal_period_samples: f64,
        sample_rate_sps: f64,
        jitter_draw: f64,
    ) -> f64 {
        self.drift * k as f64 * nominal_period_samples
            + jitter_draw * self.jitter_std_s * sample_rate_sps
    }
}

#[cfg(test)]
mod tests {
    // Tests assert bit-exact values deliberately: the arithmetic under test
    // must be exact, not approximate.
    #![allow(clippy::float_cmp)]

    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_clock_has_no_error() {
        let c = ClockModel::ideal();
        assert_eq!(c.actual_period(250.0), 250.0);
        assert_eq!(c.timing_error_samples(1000, 250.0, 25e6, 0.0), 0.0);
    }

    #[test]
    fn drift_accumulates_linearly() {
        let c = ClockModel {
            drift: 150e-6,
            jitter_std_s: 0.0,
        };
        // After 10 000 bits of 250 samples: 150e-6 · 2.5e6 = 375 samples
        // (1.5 bit periods) — the §4.1 headache, reproduced.
        let err = c.timing_error_samples(10_000, 250.0, 25e6, 0.0);
        assert!((err - 375.0).abs() < 1e-9);
    }

    #[test]
    fn crystal_draw_within_spec() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let c = ClockModel::crystal(150.0, &mut rng);
            assert!(c.drift.abs() <= 150e-6);
        }
    }

    #[test]
    fn dco_is_orders_of_magnitude_worse() {
        let mut rng = StdRng::seed_from_u64(2);
        let worst_crystal = 150e-6;
        let mut saw_large = false;
        for _ in 0..50 {
            let c = ClockModel::internal_dco(&mut rng);
            assert!(c.drift.abs() <= 40e-3);
            if c.drift.abs() > 10.0 * worst_crystal {
                saw_large = true;
            }
        }
        assert!(saw_large, "DCO draws should usually dwarf crystal drift");
    }

    #[test]
    fn jitter_scales_with_sample_rate() {
        let c = ClockModel {
            drift: 0.0,
            jitter_std_s: 2e-9,
        };
        // 2 ns at 25 Msps = 0.05 samples per unit normal draw.
        let err = c.timing_error_samples(0, 250.0, 25e6, 1.0);
        assert!((err - 0.05).abs() < 1e-12);
    }

    #[test]
    fn actual_period_reflects_drift() {
        let c = ClockModel {
            drift: -100e-6,
            jitter_std_s: 0.0,
        };
        assert!((c.actual_period(250.0) - 249.975).abs() < 1e-9);
    }
}
