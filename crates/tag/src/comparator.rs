//! The carrier-detect comparator: the paper's free random-offset source.
//!
//! §3.2 ("Selecting fine-grained offsets"): a tag cannot *choose* a
//! fine-grained offset — it has no fine clock. Instead, "the energy from
//! the incoming signal charges up a tiny receive capacitor, which in turn
//! triggers a comparator when the voltage reaches a threshold". Three
//! randomness sources set when that happens (Fig. 4):
//!
//! 1. incident energy (placement/orientation) — sets the asymptotic
//!    voltage `V∞` and thus how deep into the charging curve the threshold
//!    sits;
//! 2. capacitor tolerance (±20 % is typical) — scales the RC constant,
//!    fixed per physical tag;
//! 3. charging noise — small oscillations on the curve, redrawn every
//!    epoch.
//!
//! The per-tag spread (sources 1–2) separates different tags' offsets by
//! many samples; the per-epoch noise (source 3) re-randomizes residual
//! collisions across epochs — "even if edges did collide in an epoch, they
//! are likely to separate the next epoch".

use rand::Rng;

/// A tag's carrier-detect start-time model: fires at
/// `t = −RC·ln(1 − Vth/V∞)` after the carrier rises.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparator {
    /// The realized RC constant in seconds (nominal × tolerance draw).
    pub rc_s: f64,
    /// The realized threshold-to-asymptote ratio `Vth/V∞ ∈ (0, 1)`,
    /// set by incident energy at this tag's placement.
    pub threshold_ratio: f64,
    /// Fractional per-epoch noise on the charging time (charging-curve
    /// oscillations), e.g. 0.01 = 1 % rms.
    pub epoch_noise: f64,
}

impl Comparator {
    /// Nominal RC of the receive capacitor circuit: 50 µs. Large enough
    /// that ±20 % part tolerance spreads tag start times across several
    /// bit periods at 100 kbps.
    pub const NOMINAL_RC_S: f64 = 50e-6;

    /// Draws a physical comparator: RC within ±`rc_tolerance` of nominal
    /// (capacitors: 0.2), threshold ratio uniform in [0.3, 0.7] (a ±3 dB
    /// spread of incident power around the firing point), 1 % epoch noise.
    pub fn draw<R: Rng>(rc_tolerance: f64, rng: &mut R) -> Self {
        Comparator {
            rc_s: Self::NOMINAL_RC_S * (1.0 + rng.gen_range(-rc_tolerance..=rc_tolerance)),
            threshold_ratio: rng.gen_range(0.3..=0.7),
            epoch_noise: 0.01,
        }
    }

    /// A deterministic comparator that fires at exactly `offset_s`
    /// (testing and controlled experiments that need forced collisions).
    pub fn fixed(offset_s: f64) -> Self {
        // Invert the charging equation with ratio 1−1/e so ln term = 1.
        Comparator {
            rc_s: offset_s,
            threshold_ratio: 1.0 - (-1.0f64).exp(),
            epoch_noise: 0.0,
        }
    }

    /// The nominal (noise-free) firing delay after carrier-on, seconds.
    pub fn nominal_delay_s(&self) -> f64 {
        -self.rc_s * (1.0 - self.threshold_ratio).ln()
    }

    /// The firing delay for one epoch, with charging noise drawn from
    /// `rng`, in seconds.
    pub fn epoch_delay_s<R: Rng>(&self, rng: &mut R) -> f64 {
        let noise = if self.epoch_noise > 0.0 {
            1.0 + rng.gen_range(-self.epoch_noise..=self.epoch_noise) * 3.0_f64.sqrt()
        } else {
            1.0
        };
        (self.nominal_delay_s() * noise).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    // Tests assert bit-exact values deliberately: the arithmetic under test
    // must be exact, not approximate.
    #![allow(clippy::float_cmp)]

    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_comparator_fires_exactly() {
        let c = Comparator::fixed(12e-6);
        assert!((c.nominal_delay_s() - 12e-6).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(0);
        assert!((c.epoch_delay_s(&mut rng) - 12e-6).abs() < 1e-12);
    }

    #[test]
    fn charging_equation_shape() {
        // Higher threshold ratio → later firing; larger RC → later firing.
        let base = Comparator {
            rc_s: 50e-6,
            threshold_ratio: 0.5,
            epoch_noise: 0.0,
        };
        let hot = Comparator {
            threshold_ratio: 0.3, // more incident power ⇒ fires earlier
            ..base
        };
        let slow = Comparator {
            rc_s: 60e-6,
            ..base
        };
        assert!(hot.nominal_delay_s() < base.nominal_delay_s());
        assert!(slow.nominal_delay_s() > base.nominal_delay_s());
    }

    #[test]
    fn tags_spread_across_many_samples() {
        // The §3.2 claim: natural variation yields fine-grained offsets.
        // At 25 Msps, the spread across tags must span ≫ the 3-sample edge
        // width (otherwise all tags would collide).
        let mut rng = StdRng::seed_from_u64(3);
        let delays: Vec<f64> = (0..16)
            .map(|_| Comparator::draw(0.2, &mut rng).nominal_delay_s() * 25e6)
            .collect();
        let min = delays.iter().copied().fold(f64::INFINITY, f64::min);
        let max = delays.iter().copied().fold(0.0, f64::max);
        assert!(max - min > 100.0, "spread {} samples too small", max - min);
    }

    #[test]
    fn epoch_noise_rerandomizes_offsets() {
        let mut rng = StdRng::seed_from_u64(4);
        let c = Comparator::draw(0.2, &mut rng);
        let a = c.epoch_delay_s(&mut rng);
        let b = c.epoch_delay_s(&mut rng);
        assert!(a != b);
        // ... but stays near the nominal delay (1 % class noise).
        assert!((a - c.nominal_delay_s()).abs() < 0.05 * c.nominal_delay_s());
    }

    #[test]
    fn epoch_noise_moves_offsets_by_several_samples() {
        // For collision re-randomization to work, epoch-to-epoch movement
        // must exceed the edge width (3 samples at 25 Msps).
        let mut rng = StdRng::seed_from_u64(5);
        let c = Comparator::draw(0.2, &mut rng);
        let samples: Vec<f64> = (0..64).map(|_| c.epoch_delay_s(&mut rng) * 25e6).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let std =
            (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64).sqrt();
        assert!(std > 3.0, "epoch offset std {std} samples too small");
    }

    #[test]
    fn delay_never_negative() {
        let c = Comparator {
            rc_s: 1e-9,
            threshold_ratio: 0.01,
            epoch_noise: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            assert!(c.epoch_delay_s(&mut rng) >= 0.0);
        }
    }
}
