//! # lf-tag
//!
//! The backscatter tag as the paper builds it — a UMass Moo class device
//! with *virtually no logic* (§3.6): it senses, clocks bits out through its
//! RF transistor the moment the reader's carrier appears, and never
//! listens. The crate models exactly the tag properties the decode pipeline
//! depends on:
//!
//! * [`clock`] — the tag's bit clock with crystal drift (150 ppm external
//!   oscillator, §4.1) and per-edge jitter; drift is what forces the
//!   reader's streams to be *tracked*, not just folded.
//! * [`comparator`] — the carrier-detect capacitor-charging model of
//!   Fig. 4; its natural variation is the paper's random-offset mechanism
//!   ("tags exhibit natural variations in when they start their transfer").
//! * [`frame`] — epoch frames: anchor bit (§3.4), payload, CRC.
//! * [`tag`] — the laissez-faire tag itself: given a payload and an epoch,
//!   produce the antenna toggle events the air synthesizer consumes.
//! * [`hardware`] — the transistor-level complexity inventory behind
//!   Table 3 (LF 176 vs Buzz 1 792 vs EPC Gen 2 22 704, + 12 T/bit FIFO).
//! * [`energy`] — the calibrated switched-capacitance power model behind
//!   Fig. 13's energy-efficiency comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod comparator;
pub mod energy;
pub mod frame;
pub mod hardware;
pub mod tag;

pub use clock::ClockModel;
pub use comparator::Comparator;
pub use energy::{PowerModel, Protocol};
pub use frame::{Frame, FrameKind};
pub use hardware::{fifo_transistors, HardwareInventory};
pub use tag::{EpochPlan, LfTag, TagConfig};
