//! Epoch frames: anchor bit, payload, CRC.
//!
//! §3.4: "Since every epoch starts with a header from each tag, we embed a
//! single anchor bit at a known location, which helps us disambiguate
//! between the rising vs falling edge clusters." The anchor is the first
//! bit of every frame and is always 1: starting from the idle (absorbing)
//! antenna state, the first edge of a frame is therefore always a *rising*
//! edge, which pins the sign of the edge vector.
//!
//! Two frame kinds cover the paper's experiments:
//! * [`FrameKind::Identification`] — the §5.2 inventory frame: 96-bit EPC +
//!   CRC-5 ("96 bits + 5 bit CRC").
//! * [`FrameKind::SensorData`] — throughput-experiment frames: arbitrary
//!   payload + CRC-16 (a 5-bit check is too weak for goodput accounting on
//!   ~100-bit payloads).

use lf_dsp::crc::{Crc16Ccitt, Crc5};
use lf_types::{BitVec, Epc96};

/// Which check trails the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// EPC identifier frame: payload must be 96 bits; CRC-5.
    Identification,
    /// Sensor-data frame: any payload; CRC-16/CCITT.
    SensorData,
}

/// A framed transmission unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    kind: FrameKind,
    payload: BitVec,
}

impl Frame {
    /// The anchor prefix of every frame (a single 1 bit).
    pub const ANCHOR_BITS: usize = 1;

    /// Builds a sensor-data frame around an arbitrary payload.
    pub fn sensor(payload: BitVec) -> Self {
        Frame {
            kind: FrameKind::SensorData,
            payload,
        }
    }

    /// Builds an identification frame around an EPC.
    pub fn identification(epc: Epc96) -> Self {
        Frame {
            kind: FrameKind::Identification,
            payload: epc.to_bits(),
        }
    }

    /// The frame kind.
    pub fn kind(&self) -> FrameKind {
        self.kind
    }

    /// The payload bits (no anchor, no CRC).
    pub fn payload(&self) -> &BitVec {
        &self.payload
    }

    /// Serializes to on-air bits: anchor ++ payload ++ CRC.
    pub fn to_bits(&self) -> BitVec {
        let mut bits = BitVec::with_capacity(self.on_air_len());
        bits.push(true); // anchor
        let protected = match self.kind {
            FrameKind::Identification => Crc5::append(&self.payload),
            FrameKind::SensorData => Crc16Ccitt::append(&self.payload),
        };
        bits.extend_from(&protected);
        bits
    }

    /// Total on-air length in bits.
    pub fn on_air_len(&self) -> usize {
        Frame::ANCHOR_BITS
            + self.payload.len()
            + match self.kind {
                FrameKind::Identification => 5,
                FrameKind::SensorData => 16,
            }
    }

    /// Attempts to parse on-air bits back into a frame: checks the anchor
    /// and verifies the CRC of `kind`. Returns `None` on any mismatch —
    /// the decoder uses this as its goodput criterion.
    pub fn from_bits(bits: &BitVec, kind: FrameKind) -> Option<Frame> {
        if bits.is_empty() || !bits[0] {
            return None; // anchor must be 1
        }
        let body = bits.slice(1, bits.len());
        let payload = match kind {
            FrameKind::Identification => {
                let p = Crc5::verify(&body)?;
                if p.len() != 96 {
                    return None;
                }
                p
            }
            FrameKind::SensorData => Crc16Ccitt::verify(&body)?,
        };
        Some(Frame { kind, payload })
    }

    /// For identification frames: the decoded EPC.
    pub fn epc(&self) -> Option<Epc96> {
        (self.kind == FrameKind::Identification)
            .then(|| Epc96::from_bits(&self.payload))
            .flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensor_frame_round_trip() {
        let payload = BitVec::from_str_binary("101100111000111100001010");
        let f = Frame::sensor(payload.clone());
        let bits = f.to_bits();
        assert_eq!(bits.len(), 1 + 24 + 16);
        assert!(bits[0], "anchor must be 1");
        let parsed = Frame::from_bits(&bits, FrameKind::SensorData).unwrap();
        assert_eq!(parsed.payload(), &payload);
    }

    #[test]
    fn identification_frame_round_trip() {
        let epc = Epc96::for_tag(7);
        let f = Frame::identification(epc);
        let bits = f.to_bits();
        assert_eq!(bits.len(), 1 + 96 + 5, "96-bit EPC + 5-bit CRC + anchor");
        let parsed = Frame::from_bits(&bits, FrameKind::Identification).unwrap();
        assert_eq!(parsed.epc(), Some(epc));
    }

    #[test]
    fn corrupted_frames_rejected() {
        let f = Frame::sensor(BitVec::from_u64(0xABCD, 16));
        let bits = f.to_bits();
        for i in 0..bits.len() {
            let mut bad: Vec<bool> = bits.iter().collect();
            bad[i] = !bad[i];
            let bad: BitVec = bad.into_iter().collect();
            assert!(
                Frame::from_bits(&bad, FrameKind::SensorData).is_none(),
                "single-bit error at {i} not detected"
            );
        }
    }

    #[test]
    fn anchor_zero_rejected() {
        let f = Frame::sensor(BitVec::from_u64(0xF0, 8));
        let mut bits: Vec<bool> = f.to_bits().iter().collect();
        bits[0] = false;
        let bits: BitVec = bits.into_iter().collect();
        assert!(Frame::from_bits(&bits, FrameKind::SensorData).is_none());
    }

    #[test]
    fn wrong_kind_rejected() {
        let f = Frame::identification(Epc96::for_tag(1));
        let bits = f.to_bits();
        assert!(Frame::from_bits(&bits, FrameKind::SensorData).is_none());
    }

    #[test]
    fn empty_bits_rejected() {
        assert!(Frame::from_bits(&BitVec::new(), FrameKind::SensorData).is_none());
    }

    #[test]
    fn epc_on_sensor_frame_is_none() {
        let f = Frame::sensor(Epc96::for_tag(1).to_bits());
        assert_eq!(f.epc(), None);
    }
}
