//! Bit-identity pinning of the SoA/SIMD hot kernels against their scalar
//! references, in the style of `hotpath_equivalence`.
//!
//! Every kernel in `lf_dsp::simd` carries the contract that the
//! runtime-dispatched backend is *bitwise* identical to the scalar
//! spelling — the golden decode digest depends on it. These proptests
//! drive each kernel over randomized inputs twice, once with
//! `set_scalar_override(true)` and once dispatched, and compare outputs
//! by exact bit pattern (`to_bits`), not tolerance. The batched
//! multi-period fold is pinned the same way against repeated
//! single-period folds.

use std::sync::Mutex;

use lf_dsp::fold::{FoldSpec, FoldTable, FoldedHistogram};
use lf_dsp::simd::{
    diff_msq_into, first_at_or_above, nearest_centroid_into, set_scalar_override, sqrt_abs_dev_into,
};
use proptest::prelude::*;

/// The scalar override is process-global: without serialization, a
/// sibling test flipping it mid-comparison would silently run both legs
/// on the same backend (the assertion would still hold — both backends
/// are identical — but the test would stop exercising the SIMD path).
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once forced-scalar and once dispatched, returning both
/// results, with the override held stable for the duration.
fn on_both_backends<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = BACKEND_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    set_scalar_override(true);
    let scalar = f();
    set_scalar_override(false);
    let dispatched = f();
    (scalar, dispatched)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The windowed IQ differential over arbitrary prefix-sum channels:
    /// every produced squared magnitude matches the scalar reference bit
    /// for bit, margins included.
    #[test]
    fn diff_msq_bit_identical(
        chans in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..300),
        guard in 0usize..4,
        window in 1usize..8,
    ) {
        let re: Vec<f64> = chans.iter().map(|c| c.0).collect();
        let im: Vec<f64> = chans.iter().map(|c| c.1).collect();
        let (scalar, dispatched) = on_both_backends(|| {
            let mut out = Vec::new();
            diff_msq_into(&re, &im, guard, window, &mut out);
            out
        });
        prop_assert_eq!(bits(&scalar), bits(&dispatched));
    }

    /// The sqrt-deviation rewrite: IEEE sqrt is correctly rounded and abs
    /// clears the sign bit, so lanes and scalars must agree exactly.
    /// Inputs stay non-negative as real msq values are (sums of squares).
    #[test]
    fn sqrt_abs_dev_bit_identical(
        msq in proptest::collection::vec(0.0f64..1e9, 0..300),
        med in -1e3f64..1e3,
    ) {
        let (scalar, dispatched) = on_both_backends(|| {
            let mut out = Vec::new();
            sqrt_abs_dev_into(&msq, med, &mut out);
            out
        });
        prop_assert_eq!(bits(&scalar), bits(&dispatched));
    }

    /// The sub-threshold skip scan returns the same index from every
    /// starting point, including past-the-end starts and NaN stops
    /// (`!(NaN < cutoff)` halts both spellings at the NaN).
    #[test]
    fn first_at_or_above_bit_identical(
        raw in proptest::collection::vec((-1e3f64..1e3, 0u32..10), 0..300),
        from in 0usize..310,
        cutoff in -1e3f64..1e3,
    ) {
        // ~10 % of samples become NaN to exercise the unordered stop.
        let series: Vec<f64> = raw
            .iter()
            .map(|&(v, tag)| if tag == 0 { f64::NAN } else { v })
            .collect();
        let (scalar, dispatched) =
            on_both_backends(|| first_at_or_above(&series, from, cutoff));
        prop_assert_eq!(scalar, dispatched);
    }

    /// Nearest-centroid assignment: first-minimum index and exact squared
    /// distance agree between backends for every point, including ties
    /// (duplicate centroids) and the empty-centroid degenerate case.
    #[test]
    fn nearest_centroid_bit_identical(
        pts in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 0..200),
        cents_raw in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 0..10),
        dup in any::<bool>(),
    ) {
        let mut cents = cents_raw;
        if dup && !cents.is_empty() {
            // Exercise the tie path: a duplicated centroid must still
            // yield the *first* minimizing index on both backends.
            let first = cents[0];
            cents.push(first);
        }
        let pre: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let pim: Vec<f64> = pts.iter().map(|p| p.1).collect();
        let cre: Vec<f64> = cents.iter().map(|c| c.0).collect();
        let cim: Vec<f64> = cents.iter().map(|c| c.1).collect();
        let (scalar, dispatched) = on_both_backends(|| {
            let mut idx = Vec::new();
            let mut dist = Vec::new();
            nearest_centroid_into(&pre, &pim, &cre, &cim, &mut idx, &mut dist);
            (idx, dist)
        });
        prop_assert_eq!(scalar.0, dispatched.0);
        prop_assert_eq!(bits(&scalar.1), bits(&dispatched.1));
    }

    /// The batched multi-period fold is bit-identical to k separate
    /// single-period folds over the same table — bins, counts, and
    /// periods — for random event sets with retired entries and random
    /// per-spec window bounds.
    #[test]
    fn batched_fold_matches_repeated_folds(
        events in proptest::collection::vec(
            (0.0f64..100_000.0, 0.0f64..10.0, 0u32..100),
            1..400,
        ),
        raw_specs in proptest::collection::vec(
            (5.0f64..5_000.0, 1usize..128, 0.0f64..120_000.0),
            1..6,
        ),
    ) {
        let times: Vec<f64> = events.iter().map(|e| e.0).collect();
        let weights: Vec<f64> = events.iter().map(|e| e.1).collect();
        let mut table = FoldTable::new(times, weights);
        for (i, e) in events.iter().enumerate() {
            // ~15 % of events retired, so the `active` filter is live.
            if e.2 < 15 {
                table.retire(i);
            }
        }
        let specs: Vec<FoldSpec> = raw_specs
            .iter()
            .map(|&(period, nbins, t_max)| FoldSpec { period, nbins, t_max })
            .collect();

        let mut batched: Vec<FoldedHistogram> = Vec::new();
        table.fold_many_within_to(&specs, &mut batched);
        prop_assert!(batched.len() >= specs.len());

        let mut single = FoldedHistogram::default();
        for (spec, out) in specs.iter().zip(&batched) {
            table.fold_within_to(spec.period, spec.nbins, spec.t_max, &mut single);
            prop_assert_eq!(single.period.to_bits(), out.period.to_bits());
            prop_assert_eq!(bits(&single.bins), bits(&out.bins));
            prop_assert_eq!(&single.counts, &out.counts);
        }
    }
}
