//! Property-based tests over the DSP primitives.

// Tests assert bit-exact values deliberately: a reported peak must carry the
// exact stored sample, not an approximation.
#![allow(clippy::float_cmp)]

use lf_dsp::crc::{Crc16Ccitt, Crc5};
use lf_dsp::fold::fold_events;
use lf_dsp::kmeans::kmeans;
use lf_dsp::linalg::Matrix;
use lf_dsp::peaks::find_peaks;
use lf_types::{BitVec, Complex};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CRC framing round-trips for arbitrary payloads, both widths.
    #[test]
    fn crc_round_trips(bits in proptest::collection::vec(any::<bool>(), 1..200)) {
        let payload: BitVec = bits.into_iter().collect();
        prop_assert_eq!(Crc5::verify(&Crc5::append(&payload)), Some(payload.clone()));
        prop_assert_eq!(
            Crc16Ccitt::verify(&Crc16Ccitt::append(&payload)),
            Some(payload)
        );
    }

    /// K-means invariants: assignments in range, every point's centroid
    /// is its nearest, inertia is non-negative and consistent.
    #[test]
    fn kmeans_invariants(
        pts in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 1..120),
        k in 1usize..6,
    ) {
        let points: Vec<Complex> = pts.into_iter().map(|(a, b)| Complex::new(a, b)).collect();
        let fit = kmeans(&points, k, 40);
        prop_assert!(fit.centroids.len() <= k.max(1));
        prop_assert_eq!(fit.assignments.len(), points.len());
        let mut inertia = 0.0;
        for (p, &a) in points.iter().zip(&fit.assignments) {
            prop_assert!(a < fit.centroids.len());
            let own = p.distance_sqr(fit.centroids[a]);
            for c in &fit.centroids {
                prop_assert!(own <= p.distance_sqr(*c) + 1e-9);
            }
            inertia += own;
        }
        prop_assert!((inertia - fit.inertia).abs() < 1e-6 * (1.0 + inertia));
    }

    /// Folding conserves total weight and count.
    #[test]
    fn folding_conserves_mass(
        times in proptest::collection::vec(0.0f64..100_000.0, 1..200),
        period in 10.0f64..5_000.0,
    ) {
        let weights = vec![1.0; times.len()];
        let h = fold_events(&times, &weights, period, 64);
        let total: f64 = h.bins.iter().sum();
        prop_assert!((total - times.len() as f64).abs() < 1e-9);
        prop_assert_eq!(h.counts.iter().sum::<usize>(), times.len());
    }

    /// Peak finding returns sorted, in-bounds indices above threshold,
    /// respecting the dead zone.
    #[test]
    fn peaks_invariants(
        series in proptest::collection::vec(0.0f64..10.0, 1..200),
        threshold in 0.0f64..10.0,
        min_dist in 1usize..10,
    ) {
        let peaks = find_peaks(&series, threshold, min_dist);
        for w in peaks.windows(2) {
            prop_assert!(w[1].index > w[0].index);
            prop_assert!(w[1].index - w[0].index >= min_dist);
        }
        for p in &peaks {
            prop_assert!(p.index < series.len());
            prop_assert!(p.value >= threshold);
            prop_assert_eq!(p.value, series[p.index]);
        }
    }

    /// Least squares actually minimizes: perturbing the solution never
    /// reduces the residual.
    #[test]
    fn least_squares_is_a_minimum(
        rows in 3usize..8,
        data in proptest::collection::vec(-5.0f64..5.0, 16),
        rhs in proptest::collection::vec(-5.0f64..5.0, 8),
    ) {
        let cols = 2;
        let a = Matrix::from_rows(rows, cols, data[..rows * cols].to_vec());
        let b = &rhs[..rows];
        let Ok(x) = a.least_squares(b, 1e-9) else {
            // Singular: acceptable outcome for random matrices.
            return Ok(());
        };
        let residual = |x: &[f64]| -> f64 {
            let ax = a.mul_vec(x);
            ax.iter().zip(b).map(|(p, q)| (p - q) * (p - q)).sum()
        };
        let r0 = residual(&x);
        for d in 0..cols {
            for step in [1e-3, -1e-3] {
                let mut y = x.clone();
                y[d] += step;
                prop_assert!(residual(&y) + 1e-12 >= r0);
            }
        }
    }
}
