//! Adversarial-float finiteness properties.
//!
//! The decode pipeline's numeric invariant (see DESIGN.md "Numeric
//! invariants & lint policy") is that every stage maps finite inputs to
//! finite outputs. These properties attack the two stages where that is
//! least obvious — k-means (distance accumulation over ~300 orders of
//! magnitude) and the Viterbi trellis (log-densities that underflow to -∞
//! when an observation sits far outside every emission cluster) — with
//! values spanning the representable range.

use lf_dsp::kmeans::kmeans;
use lf_dsp::viterbi::{EmissionModel, ViterbiDecoder};
use lf_types::Complex;
use proptest::prelude::*;

/// `m · 10^e`: a float with independently adversarial mantissa and scale.
fn wide(m: f64, e: i32) -> f64 {
    m * 10f64.powi(e)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// K-means centroids, assignments, and inertia stay finite for any
    /// finite input. Exponents up to 150 keep squared distances (~10^300)
    /// representable — beyond that the *inputs* overflow, which the
    /// decoder's stage guards reject upstream.
    #[test]
    fn kmeans_centroids_finite_under_adversarial_floats(
        pts in proptest::collection::vec(
            ((-1.0f64..1.0, 0i32..150), (-1.0f64..1.0, 0i32..150)),
            1..60,
        ),
        k in 1usize..5,
    ) {
        let points: Vec<Complex> = pts
            .iter()
            .map(|&((a, ea), (b, eb))| Complex::new(wide(a, ea), wide(b, eb)))
            .collect();
        let fit = kmeans(&points, k, 30);
        for c in &fit.centroids {
            prop_assert!(c.is_finite(), "non-finite centroid {:?}", c);
        }
        prop_assert!(fit.inertia.is_finite(), "non-finite inertia {}", fit.inertia);
        prop_assert_eq!(fit.assignments.len(), points.len());
    }

    /// The Viterbi decoder always yields a full-length path whose metric is
    /// finite — even when observations sit so far from every emission
    /// cluster that the raw Gaussian log-densities underflow to -∞, and
    /// even with near-degenerate variances.
    #[test]
    fn viterbi_path_metric_finite_under_adversarial_floats(
        obs in proptest::collection::vec(
            ((-1.0f64..1.0, 0i32..150), (-1.0f64..1.0, 0i32..150)),
            1..48,
        ),
        edge in (-1.0f64..1.0, -1.0f64..1.0),
        var_exp in -18i32..6,
        toggle in 0.0f64..1.0,
        start in 0usize..3,
    ) {
        let observations: Vec<Complex> = obs
            .iter()
            .map(|&((a, ea), (b, eb))| Complex::new(wide(a, ea), wide(b, eb)))
            .collect();
        let e = Complex::new(edge.0, edge.1);
        let var = 10f64.powi(var_exp);
        let model = EmissionModel::for_edge_vector(e, var);
        let dec = ViterbiDecoder::with_toggle_prob(model, toggle);
        let initial_level = [None, Some(false), Some(true)][start];

        let path = dec.decode_states(&observations, initial_level);
        prop_assert_eq!(path.len(), observations.len());
        let metric = dec.path_metric(&observations, &path);
        prop_assert!(metric.is_finite(), "non-finite path metric {}", metric);

        let bits = dec.decode_bits(&observations, initial_level);
        prop_assert_eq!(bits.len(), observations.len());
    }
}
