//! Runtime-dispatched SIMD hot kernels with bit-identical scalar fallbacks.
//!
//! The decode hot path spends most of its time in four elementwise loops:
//! the squared-magnitude differential series of edge detection, the
//! sqrt-deviation pass of the robust threshold, the sub-threshold skip scan
//! of peak detection, and the nearest-centroid assignment of k-means. All
//! four operate on structure-of-arrays `&[f64]` slices (see
//! [`lf_types::IqBuffer`] and DESIGN.md §15) so the vector variants can use
//! plain unaligned loads instead of gathers.
//!
//! **Determinism policy (DESIGN.md §15):** every kernel here has exactly one
//! observable result. The AVX-512 variants perform the *same* IEEE-754
//! operations as the scalar spellings — elementwise add/sub/mul (never FMA,
//! which contracts two roundings into one), correctly-rounded `sqrt`, and
//! bitwise `abs` — so scalar and vector outputs are bit-identical on every
//! input, pinned by the `simd_equivalence` proptests and asserted again by
//! the golden decode digest. Backend selection can therefore never change a
//! decode.
//!
//! Selection order: the `simd` cargo feature must be on (default), the
//! target must be x86_64, the build must not be under Miri (Miri cannot
//! execute vendor intrinsics), the process-wide scalar override must be
//! off, and `avx512f` must be detected at runtime. Anything else runs the
//! scalar fallbacks.

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide kill switch for the vector kernels (used by the
/// equivalence tests and available to operators chasing a suspected
/// miscompile). `true` forces every kernel onto its scalar fallback.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Forces (or un-forces) every kernel onto its scalar fallback,
/// process-wide. Outputs are bit-identical either way; this only changes
/// which instructions produce them.
pub fn set_scalar_override(force: bool) {
    // ordering: Relaxed suffices — the flag is an independent boolean with
    // no data published alongside it; readers only need to eventually see
    // the store, and the equivalence tests toggle it on a single thread.
    FORCE_SCALAR.store(force, Ordering::Relaxed);
}

/// Which kernel implementation [`active_backend`] resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar fallbacks (always available; the reference
    /// spelling every other backend is pinned against).
    Scalar,
    /// 8-lane f64 kernels using AVX-512F.
    Avx512f,
}

/// Resolves the backend the kernels will use for the current call.
pub fn active_backend() -> Backend {
    #[cfg(all(feature = "simd", target_arch = "x86_64", not(miri)))]
    {
        // ordering: Relaxed suffices — the flag guards no other memory;
        // either backend produces bit-identical outputs, so a stale read
        // only changes which instructions compute them.
        if !FORCE_SCALAR.load(Ordering::Relaxed) && is_x86_feature_detected!("avx512f") {
            return Backend::Avx512f;
        }
    }
    Backend::Scalar
}

/// The squared-magnitude differential series of edge detection (§3.1).
///
/// `re`/`im` are the split *prefix-sum* arrays of one epoch (length
/// `n + 1`, leading zero). For every sample `t` in
/// `[guard + window, n - guard - window)` this computes the windowed-mean
/// IQ differential across `t` and writes its squared magnitude to
/// `out[t]`; samples inside the margins get `0.0` (their averaging windows
/// would clamp and the "differential" would be the raw reflection level).
///
/// Bitwise identical to the scalar spelling
/// `(mean(t+g, t+g+w) - mean(t-g-w, t-g)).norm_sqr()` over
/// `PrefixSums::mean`.
pub fn diff_msq_into(re: &[f64], im: &[f64], guard: usize, window: usize, out: &mut Vec<f64>) {
    assert_eq!(re.len(), im.len(), "re/im prefix length mismatch");
    assert!(window > 0, "window must be positive");
    let n = re.len().saturating_sub(1);
    out.clear();
    out.resize(n, 0.0);
    let margin = guard + window;
    let (Some(hi), lo) = (n.checked_sub(margin), margin) else {
        return;
    };
    if lo >= hi {
        return;
    }
    match active_backend() {
        #[cfg(all(feature = "simd", target_arch = "x86_64", not(miri)))]
        Backend::Avx512f => x86::diff_msq(re, im, lo, hi, guard, window, out),
        _ => diff_msq_scalar(re, im, lo, hi, guard, window, out),
    }
}

/// Scalar reference for [`diff_msq_into`] over `t ∈ [lo, hi)`.
// hot-kernel begin (no-aos-hotloop: SoA slices only in this region)
fn diff_msq_scalar(
    re: &[f64],
    im: &[f64],
    lo: usize,
    hi: usize,
    g: usize,
    w: usize,
    out: &mut [f64],
) {
    let inv = 1.0 / w as f64;
    for t in lo..hi {
        let a_re = (re[t + g + w] - re[t + g]) * inv;
        let a_im = (im[t + g + w] - im[t + g]) * inv;
        let b_re = (re[t - g] - re[t - g - w]) * inv;
        let b_im = (im[t - g] - im[t - g - w]) * inv;
        let d_re = a_re - b_re;
        let d_im = a_im - b_im;
        out[t] = d_re * d_re + d_im * d_im;
    }
}
// hot-kernel end

/// The sqrt-deviation pass of the robust threshold: rewrites `out` to
/// `|sqrt(msq[i]) - med|` for every element. IEEE `sqrt` is correctly
/// rounded and `abs` clears the sign bit, so the vector variant is
/// bit-identical to the scalar spelling `(v.sqrt() - med).abs()`.
pub fn sqrt_abs_dev_into(msq: &[f64], med: f64, out: &mut Vec<f64>) {
    out.clear();
    out.resize(msq.len(), 0.0);
    match active_backend() {
        #[cfg(all(feature = "simd", target_arch = "x86_64", not(miri)))]
        Backend::Avx512f => x86::sqrt_abs_dev(msq, med, out),
        _ => sqrt_abs_dev_scalar(msq, med, out),
    }
}

/// Scalar reference for [`sqrt_abs_dev_into`].
fn sqrt_abs_dev_scalar(msq: &[f64], med: f64, out: &mut [f64]) {
    for (o, &v) in out.iter_mut().zip(msq) {
        *o = (v.sqrt() - med).abs();
    }
}

/// The smallest `i >= from` with `!(series[i] < cutoff)` (i.e. the first
/// sample the peak scan must actually examine; NaN stops the scan exactly
/// as it does in the scalar loop), or `series.len()` when the tail is all
/// sub-threshold. This is the skip scan that lets `find_peaks` move
/// through the ~99 % of a quiet epoch that sits below the noise floor at
/// memory speed.
pub fn first_at_or_above(series: &[f64], from: usize, cutoff: f64) -> usize {
    let n = series.len();
    let mut i = from.min(n);
    match active_backend() {
        #[cfg(all(feature = "simd", target_arch = "x86_64", not(miri)))]
        Backend::Avx512f => x86::first_at_or_above(series, i, cutoff),
        _ => {
            while i < n && series[i] < cutoff {
                i += 1;
            }
            i
        }
    }
}

/// Nearest-centroid assignment (k-means inner loop, §3.3): for every point
/// `(pre[i], pim[i])`, finds the centroid `(cre[j], cim[j])` minimizing
/// the squared distance `(px-cx)² + (py-cy)²` and writes the *first*
/// minimizing index to `idx[i]` and its distance to `dist[i]`.
///
/// First-minimum semantics match `Iterator::min_by(f64::total_cmp)` over
/// finite distances: the running best is replaced only on a strict `<`.
/// With no centroids every point gets index 0 and distance `+∞`.
pub fn nearest_centroid_into(
    pre: &[f64],
    pim: &[f64],
    cre: &[f64],
    cim: &[f64],
    idx: &mut Vec<u32>,
    dist: &mut Vec<f64>,
) {
    assert_eq!(pre.len(), pim.len(), "point re/im length mismatch");
    assert_eq!(cre.len(), cim.len(), "centroid re/im length mismatch");
    idx.clear();
    idx.resize(pre.len(), 0);
    dist.clear();
    dist.resize(pre.len(), f64::INFINITY);
    if cre.is_empty() {
        return;
    }
    match active_backend() {
        #[cfg(all(feature = "simd", target_arch = "x86_64", not(miri)))]
        Backend::Avx512f => x86::nearest_centroid(pre, pim, cre, cim, idx, dist),
        _ => nearest_centroid_scalar(pre, pim, cre, cim, idx, dist),
    }
}

/// Scalar reference for [`nearest_centroid_into`].
// hot-kernel begin (no-aos-hotloop: SoA slices only in this region)
fn nearest_centroid_scalar(
    pre: &[f64],
    pim: &[f64],
    cre: &[f64],
    cim: &[f64],
    idx: &mut [u32],
    dist: &mut [f64],
) {
    for i in 0..pre.len() {
        let (px, py) = (pre[i], pim[i]);
        let mut best = 0u32;
        let mut best_d = f64::INFINITY;
        for (j, (&cx, &cy)) in cre.iter().zip(cim).enumerate() {
            let dx = px - cx;
            let dy = py - cy;
            let d = dx * dx + dy * dy;
            if d < best_d {
                best_d = d;
                best = j as u32;
            }
        }
        idx[i] = best;
        dist[i] = best_d;
    }
}
// hot-kernel end

/// AVX-512F variants. Every loop performs the same IEEE operations as its
/// scalar reference, lane by lane; tails re-enter the scalar spelling.
#[cfg(all(feature = "simd", target_arch = "x86_64", not(miri)))]
#[allow(unsafe_code)]
mod x86 {
    use core::arch::x86_64::{
        __m512d, _mm512_andnot_pd, _mm512_castsi512_pd, _mm512_cmp_pd_mask, _mm512_loadu_pd,
        _mm512_mask_blend_pd, _mm512_mul_pd, _mm512_set1_epi64, _mm512_set1_pd, _mm512_sqrt_pd,
        _mm512_storeu_pd, _mm512_sub_pd, _CMP_LT_OQ, _CMP_NLT_UQ,
    };

    const LANES: usize = 8;

    /// Re-asserts CPU support (a cached atomic load), then enters the
    /// vector kernel. The dispatcher only routes here after detection, so
    /// the assert is a backstop that keeps this entry point sound.
    pub(super) fn diff_msq(
        re: &[f64],
        im: &[f64],
        lo: usize,
        hi: usize,
        g: usize,
        w: usize,
        out: &mut [f64],
    ) {
        assert!(is_x86_feature_detected!("avx512f"), "avx512f not available");
        // SAFETY: avx512f verified above; slice bounds are established by
        // `super::diff_msq_into` (see the kernel's safety contract).
        unsafe { diff_msq_avx512(re, im, lo, hi, g, w, out) }
    }

    /// Safe entry for [`sqrt_abs_dev_avx512`]; see [`diff_msq`].
    pub(super) fn sqrt_abs_dev(msq: &[f64], med: f64, out: &mut [f64]) {
        assert!(is_x86_feature_detected!("avx512f"), "avx512f not available");
        // SAFETY: avx512f verified above; `out` is resized to `msq.len()`
        // by the dispatcher.
        unsafe { sqrt_abs_dev_avx512(msq, med, out) }
    }

    /// Safe entry for [`first_at_or_above_avx512`]; see [`diff_msq`].
    pub(super) fn first_at_or_above(series: &[f64], from: usize, cutoff: f64) -> usize {
        assert!(is_x86_feature_detected!("avx512f"), "avx512f not available");
        // SAFETY: avx512f verified above; `from <= series.len()` is
        // clamped by the dispatcher.
        unsafe { first_at_or_above_avx512(series, from, cutoff) }
    }

    /// Safe entry for [`nearest_centroid_avx512`]; see [`diff_msq`].
    pub(super) fn nearest_centroid(
        pre: &[f64],
        pim: &[f64],
        cre: &[f64],
        cim: &[f64],
        idx: &mut [u32],
        dist: &mut [f64],
    ) {
        assert!(is_x86_feature_detected!("avx512f"), "avx512f not available");
        // SAFETY: avx512f verified above; the dispatcher sizes `idx` and
        // `dist` to `pre.len()` and rejects empty centroid sets.
        unsafe { nearest_centroid_avx512(pre, pim, cre, cim, idx, dist) }
    }

    /// # Safety
    /// Caller must have verified `avx512f` is available; `re`/`im` must be
    /// prefix arrays of length `n + 1 > hi - 1 + g + w` with
    /// `lo >= g + w` (both guaranteed by [`super::diff_msq_into`]).
    #[target_feature(enable = "avx512f")]
    unsafe fn diff_msq_avx512(
        re: &[f64],
        im: &[f64],
        lo: usize,
        hi: usize,
        g: usize,
        w: usize,
        out: &mut [f64],
    ) {
        // SAFETY: all loads below read 8 consecutive f64s starting at
        // indices in [t - g - w, t + g + w] with t + LANES <= hi, so the
        // furthest element is (hi - 1) + g + w <= n - 1 < re.len(); the
        // store writes out[t .. t + 8] with t + 8 <= hi <= out.len().
        unsafe {
            let inv = _mm512_set1_pd(1.0 / w as f64);
            let mut t = lo;
            while t + LANES <= hi {
                let a_hi_re = _mm512_loadu_pd(re.as_ptr().add(t + g + w));
                let a_lo_re = _mm512_loadu_pd(re.as_ptr().add(t + g));
                let a_hi_im = _mm512_loadu_pd(im.as_ptr().add(t + g + w));
                let a_lo_im = _mm512_loadu_pd(im.as_ptr().add(t + g));
                let b_hi_re = _mm512_loadu_pd(re.as_ptr().add(t - g));
                let b_lo_re = _mm512_loadu_pd(re.as_ptr().add(t - g - w));
                let b_hi_im = _mm512_loadu_pd(im.as_ptr().add(t - g));
                let b_lo_im = _mm512_loadu_pd(im.as_ptr().add(t - g - w));
                let a_re = _mm512_mul_pd(_mm512_sub_pd(a_hi_re, a_lo_re), inv);
                let a_im = _mm512_mul_pd(_mm512_sub_pd(a_hi_im, a_lo_im), inv);
                let b_re = _mm512_mul_pd(_mm512_sub_pd(b_hi_re, b_lo_re), inv);
                let b_im = _mm512_mul_pd(_mm512_sub_pd(b_hi_im, b_lo_im), inv);
                let d_re = _mm512_sub_pd(a_re, b_re);
                let d_im = _mm512_sub_pd(a_im, b_im);
                // mul + add, not FMA: one rounding per operation, exactly
                // like the scalar `d_re * d_re + d_im * d_im`.
                let msq = _mm512_add_pd_exact(_mm512_mul_pd(d_re, d_re), _mm512_mul_pd(d_im, d_im));
                _mm512_storeu_pd(out.as_mut_ptr().add(t), msq);
                t += LANES;
            }
            super::diff_msq_scalar(re, im, t, hi, g, w, out);
        }
    }

    /// Plain vector add, named to make the no-FMA policy greppable.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn _mm512_add_pd_exact(a: __m512d, b: __m512d) -> __m512d {
        core::arch::x86_64::_mm512_add_pd(a, b)
    }

    /// # Safety
    /// Caller must have verified `avx512f`; `out.len() == msq.len()`.
    #[target_feature(enable = "avx512f")]
    unsafe fn sqrt_abs_dev_avx512(msq: &[f64], med: f64, out: &mut [f64]) {
        // SAFETY: every load/store touches indices [i, i + 8) with
        // i + LANES <= msq.len() == out.len().
        unsafe {
            let m = _mm512_set1_pd(med);
            // abs = clear the sign bit, exactly `f64::abs`.
            let sign = _mm512_castsi512_pd(_mm512_set1_epi64(i64::MIN));
            let n = msq.len();
            let mut i = 0;
            while i + LANES <= n {
                let v = _mm512_loadu_pd(msq.as_ptr().add(i));
                let dev = _mm512_sub_pd(_mm512_sqrt_pd(v), m);
                _mm512_storeu_pd(out.as_mut_ptr().add(i), _mm512_andnot_pd(sign, dev));
                i += LANES;
            }
            super::sqrt_abs_dev_scalar(&msq[i..], med, &mut out[i..]);
        }
    }

    /// # Safety
    /// Caller must have verified `avx512f`; `from <= series.len()`.
    #[target_feature(enable = "avx512f")]
    unsafe fn first_at_or_above_avx512(series: &[f64], from: usize, cutoff: f64) -> usize {
        // SAFETY: loads touch [i, i + 8) with i + LANES <= series.len().
        unsafe {
            let c = _mm512_set1_pd(cutoff);
            let n = series.len();
            let mut i = from;
            while i + LANES <= n {
                let v = _mm512_loadu_pd(series.as_ptr().add(i));
                // Not-less-than, unordered: true for v >= cutoff *and* for
                // NaN — the exact complement of the scalar `v < cutoff`.
                let stop = _mm512_cmp_pd_mask::<_CMP_NLT_UQ>(v, c);
                if stop != 0 {
                    return i + stop.trailing_zeros() as usize;
                }
                i += LANES;
            }
            while i < n && series[i] < cutoff {
                i += 1;
            }
            i
        }
    }

    /// # Safety
    /// Caller must have verified `avx512f`; `idx`/`dist` must be
    /// `pre.len()` long, `cre`/`cim` non-empty and equal-length.
    #[target_feature(enable = "avx512f")]
    unsafe fn nearest_centroid_avx512(
        pre: &[f64],
        pim: &[f64],
        cre: &[f64],
        cim: &[f64],
        idx: &mut [u32],
        dist: &mut [f64],
    ) {
        // SAFETY: point loads and the dist store touch [i, i + 8) with
        // i + LANES <= pre.len() == pim.len() == dist.len() == idx.len();
        // the best-index vector is spilled through a fixed [i64; 8].
        unsafe {
            let n = pre.len();
            let mut i = 0;
            while i + LANES <= n {
                let px = _mm512_loadu_pd(pre.as_ptr().add(i));
                let py = _mm512_loadu_pd(pim.as_ptr().add(i));
                let mut best_d = _mm512_set1_pd(f64::INFINITY);
                let mut best_i = _mm512_set1_epi64(0);
                for (j, (&cx, &cy)) in cre.iter().zip(cim).enumerate() {
                    let dx = _mm512_sub_pd(px, _mm512_set1_pd(cx));
                    let dy = _mm512_sub_pd(py, _mm512_set1_pd(cy));
                    let d = _mm512_add_pd_exact(_mm512_mul_pd(dx, dx), _mm512_mul_pd(dy, dy));
                    // Strict `<` keeps the first minimum, like the scalar.
                    let better = _mm512_cmp_pd_mask::<_CMP_LT_OQ>(d, best_d);
                    best_d = _mm512_mask_blend_pd(better, best_d, d);
                    best_i = core::arch::x86_64::_mm512_mask_blend_epi64(
                        better,
                        best_i,
                        _mm512_set1_epi64(j as i64),
                    );
                }
                _mm512_storeu_pd(dist.as_mut_ptr().add(i), best_d);
                let mut lanes = [0i64; LANES];
                core::arch::x86_64::_mm512_storeu_si512(lanes.as_mut_ptr().cast(), best_i);
                for (k, &l) in lanes.iter().enumerate() {
                    idx[i + k] = l as u32;
                }
                i += LANES;
            }
            super::nearest_centroid_scalar(
                &pre[i..],
                &pim[i..],
                cre,
                cim,
                &mut idx[i..],
                &mut dist[i..],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> f64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        (*state >> 11) as f64 / (1_u64 << 53) as f64 - 0.5
    }

    #[test]
    fn backend_override_round_trips() {
        let initial = active_backend();
        set_scalar_override(true);
        assert_eq!(active_backend(), Backend::Scalar);
        set_scalar_override(false);
        assert_eq!(active_backend(), initial);
    }

    #[test]
    fn diff_msq_margins_are_zero_and_interior_matches_scalar() {
        let mut st = 0x9e37_79b9_7f4a_7c15_u64;
        let n = 300;
        let mut re = vec![0.0];
        let mut im = vec![0.0];
        for _ in 0..n {
            re.push(re.last().copied().unwrap_or(0.0) + xorshift(&mut st));
            im.push(im.last().copied().unwrap_or(0.0) + xorshift(&mut st));
        }
        let (g, w) = (2usize, 4usize);
        let mut got = Vec::new();
        diff_msq_into(&re, &im, g, w, &mut got);
        let mut want = vec![0.0; n];
        diff_msq_scalar(&re, &im, g + w, n - g - w, g, w, &mut want);
        assert_eq!(got.len(), n);
        for (a, b) in got.iter().zip(&want) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for t in 0..(g + w) {
            assert_eq!(got[t].to_bits(), 0);
            assert_eq!(got[n - 1 - t].to_bits(), 0);
        }
    }

    #[test]
    fn degenerate_sizes_are_safe() {
        let mut out = Vec::new();
        diff_msq_into(&[0.0], &[0.0], 3, 5, &mut out);
        assert!(out.is_empty());
        // Margin swallows the whole series: all zeros.
        let re = vec![0.0; 9];
        diff_msq_into(&re, &re, 3, 5, &mut out);
        assert_eq!(out, vec![0.0; 8]);
        sqrt_abs_dev_into(&[], 1.0, &mut out);
        assert!(out.is_empty());
        assert_eq!(first_at_or_above(&[], 0, 1.0), 0);
        assert_eq!(first_at_or_above(&[1.0], 5, 0.0), 1);
        let (mut idx, mut dist) = (Vec::new(), Vec::new());
        nearest_centroid_into(&[1.0], &[1.0], &[], &[], &mut idx, &mut dist);
        assert_eq!(idx, vec![0]);
        assert_eq!(dist, vec![f64::INFINITY]);
    }

    #[test]
    fn first_at_or_above_handles_nan_like_the_scalar_loop() {
        let mut s = vec![0.0; 40];
        s[17] = f64::NAN; // `NaN < cutoff` is false: the scan must stop.
        assert_eq!(first_at_or_above(&s, 0, 1.0), 17);
        s[17] = 2.0;
        assert_eq!(first_at_or_above(&s, 0, 1.0), 17);
        assert_eq!(first_at_or_above(&s, 18, 1.0), 40);
    }

    #[test]
    fn nearest_centroid_keeps_first_minimum_on_ties() {
        // Two identical centroids: every point must resolve to index 0.
        let pre: Vec<f64> = (0..20).map(|k| k as f64).collect();
        let pim = vec![0.5; 20];
        let (mut idx, mut dist) = (Vec::new(), Vec::new());
        nearest_centroid_into(&pre, &pim, &[3.0, 3.0], &[0.0, 0.0], &mut idx, &mut dist);
        assert!(idx.iter().all(|&j| j == 0));
        assert!(dist.iter().all(|d| d.is_finite()));
    }
}
