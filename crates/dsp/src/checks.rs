//! NaN/∞ taint guards for the `strict-checks` feature.
//!
//! The decode pipeline is numerically closed: every stage consumes and
//! produces finite floats, and a NaN anywhere is a bug (the only sanctioned
//! entry point for non-finite data is the decoder's input sanitizer, which
//! zeroes dropout samples before any stage runs). With the `strict-checks`
//! feature enabled these guards verify that invariant at every stage
//! boundary and panic with a message naming the offending stage; with the
//! feature disabled every guard compiles to a no-op, so call sites carry no
//! `cfg` clutter and release builds pay nothing.
//!
//! The panics here are deliberate and exempt from the workspace
//! `clippy::panic` gate: `strict-checks` is a debugging instrument whose
//! entire purpose is to abort loudly at the first tainted value instead of
//! letting it propagate into a silently-corrupt decode.

use lf_types::Complex;

/// Panics if any sample in `values` is NaN/∞, naming `stage`.
///
/// No-op unless the `strict-checks` feature is enabled.
#[inline]
pub fn assert_finite_complex(stage: &str, values: &[Complex]) {
    #[cfg(feature = "strict-checks")]
    {
        if let Some(idx) = values.iter().position(|v| !v.is_finite()) {
            taint_panic(stage, idx, format!("{:?}", values[idx]));
        }
    }
    #[cfg(not(feature = "strict-checks"))]
    {
        let _ = (stage, values);
    }
}

/// Panics if any value in `values` is NaN/∞, naming `stage`.
///
/// No-op unless the `strict-checks` feature is enabled.
#[inline]
pub fn assert_finite_f64(stage: &str, values: &[f64]) {
    #[cfg(feature = "strict-checks")]
    {
        if let Some(idx) = values.iter().position(|v| !v.is_finite()) {
            taint_panic(stage, idx, format!("{}", values[idx]));
        }
    }
    #[cfg(not(feature = "strict-checks"))]
    {
        let _ = (stage, values);
    }
}

/// Panics if the single `value` is NaN/∞, naming `stage`.
///
/// No-op unless the `strict-checks` feature is enabled.
#[inline]
pub fn assert_finite_scalar(stage: &str, value: f64) {
    #[cfg(feature = "strict-checks")]
    {
        if !value.is_finite() {
            taint_panic(stage, 0, format!("{value}"));
        }
    }
    #[cfg(not(feature = "strict-checks"))]
    {
        let _ = (stage, value);
    }
}

// Aborting on taint is this module's contract (see module docs); the
// clippy::panic gate guards the decode path, not its debug instrument.
#[cfg(feature = "strict-checks")]
#[allow(clippy::panic)]
fn taint_panic(stage: &str, idx: usize, value: String) -> ! {
    panic!(
        "strict-checks: non-finite value {value} at pipeline stage \
         `{stage}` (element {idx})"
    );
}

#[cfg(all(test, feature = "strict-checks"))]
mod strict_tests {
    use super::*;

    #[test]
    #[should_panic(expected = "stage `edge-detection`")]
    fn complex_guard_names_stage() {
        assert_finite_complex(
            "edge-detection",
            &[Complex::new(1.0, 0.0), Complex::new(f64::NAN, 0.0)],
        );
    }

    #[test]
    #[should_panic(expected = "stage `stream-tracking`")]
    fn f64_guard_names_stage() {
        assert_finite_f64("stream-tracking", &[0.5, f64::INFINITY]);
    }

    #[test]
    #[should_panic(expected = "stage `collision-separation`")]
    fn scalar_guard_names_stage() {
        assert_finite_scalar("collision-separation", f64::NAN);
    }

    #[test]
    fn finite_data_passes() {
        assert_finite_complex("input", &[Complex::new(1.0, -2.0)]);
        assert_finite_f64("input", &[0.0, 1.0e308]);
        assert_finite_scalar("input", -0.0);
    }
}

#[cfg(all(test, not(feature = "strict-checks")))]
mod lenient_tests {
    use super::*;

    #[test]
    fn guards_are_no_ops_without_the_feature() {
        assert_finite_complex("input", &[Complex::new(f64::NAN, 0.0)]);
        assert_finite_f64("input", &[f64::NAN]);
        assert_finite_scalar("input", f64::INFINITY);
    }
}
