//! IQ-plane geometry: collinearity and the 2-collision parallelogram fit.
//!
//! §3.4: when two tags' edges collide, the 9 cluster centroids are
//! `a·e1 + b·e2` with `a, b ∈ {−1, 0, 1}` — a 3×3 lattice whose outer 8
//! points form a parallelogram with the single-edge vectors ±e1, ±e2 at the
//! midpoints of its sides (Fig. 5). Recovering `e1`, `e2` from the centroids
//! separates the collision *without channel estimation*, which is the
//! paper's key robustness argument against Buzz.
//!
//! The paper finds the side midpoints by locating collinear triples of
//! centroids. We implement that test ([`are_collinear`]) and a more robust
//! variant of the same idea ([`fit_parallelogram`]): exhaustively try pairs
//! of non-origin centroids as (e1, e2) and score how well the implied 3×3
//! lattice explains all nine centroids. With only 8 candidate points this
//! is 28 pairs — negligible work, and immune to the degenerate-collinearity
//! corner cases of the midpoint search (e.g. when e1 ≈ ±e2 the "sides"
//! blur together).

use lf_types::Complex;

/// True when three IQ points are collinear within `tol` (normalized by the
/// span of the points, so the test is scale-free).
pub fn are_collinear(a: Complex, b: Complex, c: Complex, tol: f64) -> bool {
    // Cross product of (b-a) and (c-a), normalized by span².
    let ab = b - a;
    let ac = c - a;
    let cross = (ab.re * ac.im - ab.im * ac.re).abs();
    let span = ab.abs().max(ac.abs()).max((c - b).abs());
    if span == 0.0 {
        return true;
    }
    cross / (span * span) <= tol
}

/// The result of fitting a 2-collision lattice to cluster centroids.
#[derive(Debug, Clone, Copy)]
pub struct ParallelogramFit {
    /// First recovered edge vector.
    pub e1: Complex,
    /// Second recovered edge vector.
    pub e2: Complex,
    /// Mean distance between the predicted lattice and the matched
    /// centroids, normalized by the edge-vector scale (lower is better).
    pub residual: f64,
}

/// The nine lattice points `a·e1 + b·e2`, `a, b ∈ {−1, 0, 1}`, in row-major
/// (a, b) order.
pub fn lattice9(e1: Complex, e2: Complex) -> [Complex; 9] {
    let mut out = [Complex::ZERO; 9];
    let mut idx = 0;
    for a in [-1.0, 0.0, 1.0] {
        for b in [-1.0, 0.0, 1.0] {
            out[idx] = e1.scale(a) + e2.scale(b);
            idx += 1;
        }
    }
    out
}

/// Fits the 2-collision lattice to a set of (ideally 9) centroids.
///
/// Returns `None` when fewer than 5 centroids are provided (the lattice is
/// under-determined), when every pairing leaves a large residual (the
/// constellation is not a 2-collision — e.g. a 3-tag pile-up), or when the
/// two recovered edge vectors are nearly parallel (the collision is
/// geometrically inseparable; §5.1's Table 2 accuracy losses come from
/// exactly these cases).
///
/// The returned `(e1, e2)` is one representative of the 8-fold
/// sign/swap-symmetric family; the caller disambiguates signs with the
/// anchor bit (§3.4) and the swap by stream identity.
pub fn fit_parallelogram(centroids: &[Complex], tol: f64) -> Option<ParallelogramFit> {
    if centroids.len() < 5 {
        return None;
    }
    let _span = lf_obs::span!("dsp.parallelogram");
    // The origin cluster is the centroid closest to 0; use it to correct a
    // small DC offset left over from imperfect differential averaging.
    let origin = centroids
        .iter()
        .copied()
        .min_by(|a, b| a.norm_sqr().total_cmp(&b.norm_sqr()))?;
    let pts: Vec<Complex> = centroids.iter().map(|&c| c - origin).collect();
    // Candidate edge vectors: all non-origin centroids.
    let scale = pts.iter().map(|p| p.abs()).fold(0.0_f64, f64::max);
    if scale == 0.0 {
        return None;
    }
    let candidates: Vec<Complex> = pts
        .iter()
        .copied()
        .filter(|p| p.abs() > 0.2 * scale)
        .collect();

    let mut best: Option<ParallelogramFit> = None;
    for i in 0..candidates.len() {
        for j in (i + 1)..candidates.len() {
            let (u, v) = (candidates[i], candidates[j]);
            // Skip (anti-)parallel pairs: u, -u cannot span the lattice.
            let cross = (u.re * v.im - u.im * v.re).abs();
            if cross < 1e-3 * u.abs() * v.abs() {
                continue;
            }
            let lattice = lattice9(u, v);
            // Score: every centroid must be near some lattice point, and
            // every lattice point should be claimed by a near centroid.
            let mut total = 0.0;
            let mut worst = 0.0_f64;
            for p in &pts {
                let d = lattice
                    .iter()
                    .map(|l| l.distance(*p))
                    .fold(f64::INFINITY, f64::min);
                total += d;
                worst = worst.max(d);
            }
            let residual = total / (pts.len() as f64 * scale);
            if worst / scale > tol * 3.0 {
                continue;
            }
            if residual <= tol && best.as_ref().is_none_or(|b| residual < b.residual) {
                best = Some(ParallelogramFit {
                    e1: u,
                    e2: v,
                    residual,
                });
            }
        }
    }
    best
}

/// Classifies a point to the nearest lattice cell of `(e1, e2)`, returning
/// the `(a, b)` direction coefficients in `{−1, 0, 1}` (Eq. 4's `ai`, `bi`).
pub fn classify_lattice(p: Complex, e1: Complex, e2: Complex) -> (i8, i8) {
    let mut best = (0i8, 0i8);
    let mut best_d = f64::INFINITY;
    for a in [-1i8, 0, 1] {
        for b in [-1i8, 0, 1] {
            let l = e1.scale(a as f64) + e2.scale(b as f64);
            let d = l.distance_sqr(p);
            if d < best_d {
                best_d = d;
                best = (a, b);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collinear_basic() {
        let a = Complex::new(0.0, 0.0);
        let b = Complex::new(1.0, 1.0);
        let c = Complex::new(2.0, 2.0);
        assert!(are_collinear(a, b, c, 1e-9));
        assert!(!are_collinear(a, b, Complex::new(2.0, 2.5), 1e-3));
        // Degenerate: identical points are collinear.
        assert!(are_collinear(a, a, a, 0.0));
    }

    #[test]
    fn lattice_has_expected_structure() {
        let e1 = Complex::new(1.0, 0.0);
        let e2 = Complex::new(0.0, 1.0);
        let l = lattice9(e1, e2);
        assert_eq!(l.len(), 9);
        assert!(l.contains(&Complex::ZERO));
        assert!(l.contains(&Complex::new(1.0, 1.0)));
        assert!(l.contains(&Complex::new(-1.0, 1.0)));
    }

    #[test]
    fn fit_recovers_exact_lattice() {
        let e1 = Complex::new(0.07, 0.02);
        let e2 = Complex::new(-0.01, 0.09);
        let centroids = lattice9(e1, e2).to_vec();
        let fit = fit_parallelogram(&centroids, 0.05).expect("exact lattice must fit");
        // Recovered pair must span the same lattice (up to sign/swap):
        let rec = lattice9(fit.e1, fit.e2);
        for c in &centroids {
            let d = rec
                .iter()
                .map(|l| l.distance(*c))
                .fold(f64::INFINITY, f64::min);
            assert!(d < 1e-9, "centroid {c} unexplained");
        }
        assert!(fit.residual < 1e-9);
    }

    #[test]
    fn fit_tolerates_noise_and_offset() {
        let e1 = Complex::new(0.06, -0.03);
        let e2 = Complex::new(0.02, 0.08);
        let offset = Complex::new(0.004, -0.002);
        let noise = [
            (0.001, -0.0005),
            (-0.0008, 0.0012),
            (0.0005, 0.0009),
            (-0.0011, -0.0003),
            (0.0002, -0.0012),
            (0.0009, 0.0004),
            (-0.0006, 0.0007),
            (0.0012, -0.0009),
            (-0.0004, 0.0002),
        ];
        let centroids: Vec<Complex> = lattice9(e1, e2)
            .iter()
            .zip(noise)
            .map(|(l, (ni, nq))| *l + offset + Complex::new(ni, nq))
            .collect();
        let fit = fit_parallelogram(&centroids, 0.08).expect("noisy lattice must fit");
        let rec = lattice9(fit.e1, fit.e2);
        for c in lattice9(e1, e2) {
            let d = rec
                .iter()
                .map(|l| l.distance(c))
                .fold(f64::INFINITY, f64::min);
            assert!(d < 0.01, "lattice point {c} missed by {d}");
        }
    }

    #[test]
    fn fit_rejects_non_lattice() {
        // 9 points on a circle — not a 2-collision constellation.
        let pts: Vec<Complex> = (0..9)
            .map(|k| Complex::from_polar(1.0, k as f64 * 0.698))
            .collect();
        assert!(fit_parallelogram(&pts, 0.02).is_none());
    }

    #[test]
    fn fit_rejects_underdetermined() {
        let pts = vec![Complex::ZERO, Complex::new(1.0, 0.0)];
        assert!(fit_parallelogram(&pts, 0.05).is_none());
    }

    #[test]
    fn classification_matches_construction() {
        let e1 = Complex::new(0.9, 0.1);
        let e2 = Complex::new(-0.2, 0.8);
        for a in [-1i8, 0, 1] {
            for b in [-1i8, 0, 1] {
                let p = e1.scale(a as f64) + e2.scale(b as f64) + Complex::new(0.02, -0.015);
                assert_eq!(classify_lattice(p, e1, e2), (a, b));
            }
        }
    }
}
