//! The 4-state edge-constraint Viterbi decoder (§3.5, Fig. 6).
//!
//! "We simply leverage the fact that certain sequences are just not
//! possible. For example, a rising edge followed by a rising edge is
//! obviously an error. To correct for such errors, we use a Viterbi decoder
//! with four states: ↑ (positive edge), ↓ (negative edge), −+ (no edge
//! found but previous edge is a positive one) and −− (no edge but previous
//! edge is negative)."
//!
//! The observation at each bit slot is the complex edge differential
//! measured there; emissions are the 2-D Gaussians fitted to the three IQ
//! clusters (rising / falling / constant). The decoded bit for a slot is
//! the antenna *level after* the slot boundary: 1 after ↑ or −+, 0 after ↓
//! or −−, matching the NRZ level coding of Table 1.

use crate::stats::Gaussian2d;
use lf_types::{BitVec, Complex};

/// The four trellis states of Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeState {
    /// ↑ — a positive (rising) edge at this slot boundary.
    Rise,
    /// ↓ — a negative (falling) edge at this slot boundary.
    Fall,
    /// −+ — no edge at this boundary; the level remains high.
    FlatHigh,
    /// −− — no edge at this boundary; the level remains low.
    FlatLow,
}

impl EdgeState {
    /// All states, indexable by [`EdgeState::index`].
    pub const ALL: [EdgeState; 4] = [
        EdgeState::Rise,
        EdgeState::Fall,
        EdgeState::FlatHigh,
        EdgeState::FlatLow,
    ];

    /// Dense index of the state.
    pub fn index(self) -> usize {
        match self {
            EdgeState::Rise => 0,
            EdgeState::Fall => 1,
            EdgeState::FlatHigh => 2,
            EdgeState::FlatLow => 3,
        }
    }

    /// The antenna level *after* this slot boundary.
    pub fn level(self) -> bool {
        matches!(self, EdgeState::Rise | EdgeState::FlatHigh)
    }

    /// The physically valid successor states: the next boundary either
    /// toggles the level (an edge in the opposite direction) or keeps it
    /// (the matching flat state). Two rising edges can never be adjacent.
    pub fn successors(self) -> [EdgeState; 2] {
        if self.level() {
            [EdgeState::Fall, EdgeState::FlatHigh]
        } else {
            [EdgeState::Rise, EdgeState::FlatLow]
        }
    }
}

/// Emission model: one Gaussian per physical edge class. `Rise` emits from
/// `rise`, `Fall` from `fall`, and both flat states from `flat`.
#[derive(Debug, Clone, Copy)]
pub struct EmissionModel {
    /// Gaussian of the rising-edge differential cluster (+e).
    pub rise: Gaussian2d,
    /// Gaussian of the falling-edge differential cluster (−e).
    pub fall: Gaussian2d,
    /// Gaussian of the no-edge cluster (origin).
    pub flat: Gaussian2d,
}

impl EmissionModel {
    /// Builds the natural model for edge vector `e` with per-axis noise
    /// variance `var`: clusters at +e, −e, and 0.
    pub fn for_edge_vector(e: Complex, var: f64) -> Self {
        EmissionModel {
            rise: Gaussian2d::new(e, var, var),
            fall: Gaussian2d::new(-e, var, var),
            flat: Gaussian2d::new(Complex::ZERO, var, var),
        }
    }

    fn log_pdf(&self, state: EdgeState, obs: Complex) -> f64 {
        match state {
            EdgeState::Rise => self.rise.log_pdf(obs),
            EdgeState::Fall => self.fall.log_pdf(obs),
            EdgeState::FlatHigh | EdgeState::FlatLow => self.flat.log_pdf(obs),
        }
    }
}

/// The Viterbi decoder over the 4-state edge trellis.
#[derive(Debug, Clone)]
pub struct ViterbiDecoder {
    emissions: EmissionModel,
    /// log P(edge) at a boundary given the level may toggle; the complement
    /// is log P(stay flat). §3.5: "We learn state transition probabilities"
    /// — for random payload bits this is 0.5, the default.
    log_p_toggle: f64,
    log_p_stay: f64,
}

impl ViterbiDecoder {
    /// Creates a decoder with equiprobable toggle/stay transitions.
    pub fn new(emissions: EmissionModel) -> Self {
        ViterbiDecoder::with_toggle_prob(emissions, 0.5)
    }

    /// Creates a decoder with a learned toggle probability (the fraction of
    /// bit boundaries that carry an edge). Clamped away from {0,1} so both
    /// branches stay reachable.
    pub fn with_toggle_prob(emissions: EmissionModel, p_toggle: f64) -> Self {
        let p = p_toggle.clamp(0.01, 0.99);
        ViterbiDecoder {
            emissions,
            log_p_toggle: p.ln(),
            log_p_stay: (1.0 - p).ln(),
        }
    }

    fn transition_cost(&self, to: EdgeState) -> f64 {
        match to {
            EdgeState::Rise | EdgeState::Fall => self.log_p_toggle,
            EdgeState::FlatHigh | EdgeState::FlatLow => self.log_p_stay,
        }
    }

    /// Emission log-density, floored to a finite minimum. A wildly distant
    /// observation (or a degenerate variance) drives the Gaussian to
    /// -∞/NaN; one such slot must *penalize* paths, not erase them — an
    /// all-(-∞) score column would leave backtracking nothing to follow.
    /// (`f64::max` also maps NaN to the floor.)
    fn emission(&self, to: EdgeState, obs: Complex) -> f64 {
        const EMISSION_FLOOR: f64 = -1.0e12;
        self.emissions.log_pdf(to, obs).max(EMISSION_FLOOR)
    }

    /// Decodes a sequence of per-slot edge differentials into the ML state
    /// path. `initial_level` is the known antenna level *before* the first
    /// slot (tags idle low before the frame, so frame decoding passes
    /// `false`; `None` allows any start).
    pub fn decode_states(
        &self,
        observations: &[Complex],
        initial_level: Option<bool>,
    ) -> Vec<EdgeState> {
        let n = observations.len();
        if n == 0 {
            return Vec::new();
        }
        let _span = lf_obs::span!("dsp.viterbi");
        const NEG_INF: f64 = f64::NEG_INFINITY;
        let mut score = [NEG_INF; 4];
        // First slot: allowed states depend on the level before it.
        for s in EdgeState::ALL {
            let allowed = match initial_level {
                None => true,
                // Coming from level `l`, the first boundary may toggle to the
                // opposite edge or stay flat at `l`.
                Some(l) => {
                    if l {
                        matches!(s, EdgeState::Fall | EdgeState::FlatHigh)
                    } else {
                        matches!(s, EdgeState::Rise | EdgeState::FlatLow)
                    }
                }
            };
            if allowed {
                score[s.index()] = self.transition_cost(s) + self.emission(s, observations[0]);
            }
        }
        let mut backptr: Vec<[usize; 4]> = Vec::with_capacity(n);
        backptr.push([usize::MAX; 4]);
        for &obs in &observations[1..] {
            let mut next = [NEG_INF; 4];
            let mut bp = [usize::MAX; 4];
            for from in EdgeState::ALL {
                let base = score[from.index()];
                if base == NEG_INF {
                    continue;
                }
                for to in from.successors() {
                    let cand = base + self.transition_cost(to) + self.emission(to, obs);
                    if cand > next[to.index()] {
                        next[to.index()] = cand;
                        bp[to.index()] = from.index();
                    }
                }
            }
            score = next;
            backptr.push(bp);
        }
        // Backtrack from the best final state.
        let mut best = 0;
        for i in 1..4 {
            if score[i] > score[best] {
                best = i;
            }
        }
        let mut path = vec![EdgeState::ALL[best]; n];
        let mut cur = best;
        for t in (1..n).rev() {
            cur = backptr[t][cur];
            path[t - 1] = EdgeState::ALL[cur];
        }
        path
    }

    /// Scores an explicit state path with the decoder's metric: summed
    /// transition costs plus (floored) emission log-densities. This is the
    /// quantity maximized by [`Self::decode_states`]; it is finite for any
    /// finite observations, which the finiteness proptests pin down.
    pub fn path_metric(&self, observations: &[Complex], path: &[EdgeState]) -> f64 {
        observations
            .iter()
            .zip(path)
            .map(|(&obs, &s)| self.transition_cost(s) + self.emission(s, obs))
            .sum()
    }

    /// Decodes observations straight to bits (the level after each slot).
    pub fn decode_bits(&self, observations: &[Complex], initial_level: Option<bool>) -> BitVec {
        self.decode_states(observations, initial_level)
            .into_iter()
            .map(|s| s.level())
            .collect()
    }
}

/// Hard-decision decoding (nearest cluster, no sequence constraint): the
/// baseline the Fig. 9 "Edge+IQ" stage uses before error correction is
/// enabled. Exposed so the ablation can compare the two on identical
/// observations.
pub fn hard_decode_bits(observations: &[Complex], e: Complex, initial_level: bool) -> BitVec {
    let mut level = initial_level;
    observations
        .iter()
        .map(|&obs| {
            let d_rise = obs.distance_sqr(e);
            let d_fall = obs.distance_sqr(-e);
            let d_flat = obs.norm_sqr();
            if d_rise <= d_fall && d_rise <= d_flat {
                level = true;
            } else if d_fall <= d_rise && d_fall <= d_flat {
                level = false;
            }
            // Flat keeps the current level.
            level
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const E: Complex = Complex { re: 1.0, im: 0.5 };

    fn observations_for_bits(bits: &[bool]) -> Vec<Complex> {
        let mut level = false;
        bits.iter()
            .map(|&b| {
                let obs = match (level, b) {
                    (false, true) => E,
                    (true, false) => -E,
                    _ => Complex::ZERO,
                };
                level = b;
                obs
            })
            .collect()
    }

    fn decoder() -> ViterbiDecoder {
        ViterbiDecoder::new(EmissionModel::for_edge_vector(E, 0.05))
    }

    #[test]
    fn clean_sequence_decodes_exactly() {
        // Table 1's example: 1 0 0 0 0 1 1 0 1 0.
        let bits = [
            true, false, false, false, false, true, true, false, true, false,
        ];
        let obs = observations_for_bits(&bits);
        let decoded = decoder().decode_bits(&obs, Some(false));
        assert_eq!(decoded.as_slice(), &bits);
    }

    #[test]
    fn state_path_respects_constraints() {
        let bits = [true, true, false, true, false, false];
        let obs = observations_for_bits(&bits);
        let states = decoder().decode_states(&obs, Some(false));
        for w in states.windows(2) {
            assert!(
                w[0].successors().contains(&w[1]),
                "illegal transition {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn corrects_a_missed_edge() {
        // Bits 1,0 produce ↑ then ↓; zero out the second observation (a
        // missed falling edge). Hard decision holds the level high forever;
        // Viterbi must still prefer ↓ or at least produce a legal path.
        let bits = [true, false, true, false, true, false];
        let mut obs = observations_for_bits(&bits);
        obs[1] = Complex::new(0.1, 0.05); // nearly flat — missed edge
        let decoded = decoder().decode_bits(&obs, Some(false));
        // The remaining strong edges force the sequence back on track: the
        // later rises are only legal if the level fell in between.
        assert_eq!(decoded.as_slice()[2..], bits[2..]);
    }

    #[test]
    fn corrects_a_spurious_double_rise() {
        // Observations claim ↑ ↑ (physically impossible). The decoder must
        // output a legal sequence, flipping one of them.
        let obs = vec![E, E, -E];
        let states = decoder().decode_states(&obs, Some(false));
        for w in states.windows(2) {
            assert!(w[0].successors().contains(&w[1]));
        }
        // Exactly one of the two claimed rises survives (which one is a
        // legitimate tie — both explanations drop one observation), and the
        // final strong falling edge is decoded as such.
        let rises = states[..2]
            .iter()
            .filter(|&&s| s == EdgeState::Rise)
            .count();
        assert_eq!(rises, 1);
        assert_eq!(states[2], EdgeState::Fall);
    }

    #[test]
    fn initial_level_constrains_first_slot() {
        // A falling edge cannot be the first event when we start low.
        let obs = vec![-E, E];
        let states = decoder().decode_states(&obs, Some(false));
        assert_ne!(states[0], EdgeState::Fall);
        // Starting high it is the natural decode.
        let states = decoder().decode_states(&obs, Some(true));
        assert_eq!(states[0], EdgeState::Fall);
        assert_eq!(states[1], EdgeState::Rise);
    }

    #[test]
    fn noisy_sequence_beats_hard_decision() {
        // With moderate noise the Viterbi leverage over per-slot decisions
        // shows up as fewer bit errors on a constraint-violating stream.
        let bits: Vec<bool> = (0..200).map(|k| (k * 7 % 3) == 0).collect();
        let mut obs = observations_for_bits(&bits);
        // Corrupt every 17th observation toward the wrong cluster.
        for (k, o) in obs.iter_mut().enumerate() {
            if k % 17 == 3 {
                *o = Complex::ZERO; // erase edges
            }
        }
        let vit = decoder().decode_bits(&obs, Some(false));
        let hard = hard_decode_bits(&obs, E, false);
        let truth: BitVec = bits.iter().copied().collect();
        assert!(
            truth.hamming_distance(&vit) <= truth.hamming_distance(&hard),
            "viterbi ({}) should not be worse than hard decision ({})",
            truth.hamming_distance(&vit),
            truth.hamming_distance(&hard)
        );
    }

    #[test]
    fn empty_observations() {
        assert!(decoder().decode_bits(&[], Some(false)).is_empty());
    }

    #[test]
    fn hard_decode_basic() {
        let bits = [true, false, true, true, false];
        let obs = observations_for_bits(&bits);
        let decoded = hard_decode_bits(&obs, E, false);
        assert_eq!(decoded.as_slice(), &bits);
    }
}
