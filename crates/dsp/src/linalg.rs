//! Small dense real matrices and least squares.
//!
//! The Buzz baseline (§2.2, Eq. 1) decodes lock-step transmissions by
//! inverting `y = d·h·b`. Our Buzz reproduction stacks the real and
//! imaginary parts of the measurement into one real system and solves it in
//! the least-squares sense; the systems involved are tiny (tens of rows and
//! columns), so a plain Gaussian elimination over the normal equations is
//! both adequate and dependency-free.

use lf_types::{Error, Result};

/// A dense row-major real matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector. Panics if the data
    /// length does not match.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix { rows, cols, data }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product. Panics on dimension mismatch.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in mul");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        out
    }

    /// Matrix–vector product. Panics on dimension mismatch.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "dimension mismatch in mul_vec");
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self[(r, c)] * v[c]).sum())
            .collect()
    }

    /// Solves the square system `self · x = b` by Gaussian elimination with
    /// partial pivoting. Returns [`Error::SingularSystem`] when a pivot
    /// collapses.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve needs a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let n = self.rows;
        // Augmented working copy.
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot.
            let mut pivot = col;
            for r in (col + 1)..n {
                if a[r * n + col].abs() > a[pivot * n + col].abs() {
                    pivot = r;
                }
            }
            if a[pivot * n + col].abs() < 1e-12 {
                return Err(Error::SingularSystem { rows: n, cols: n });
            }
            if pivot != col {
                for c in 0..n {
                    a.swap(col * n + c, pivot * n + c);
                }
                x.swap(col, pivot);
            }
            let inv = 1.0 / a[col * n + col];
            for r in (col + 1)..n {
                let f = a[r * n + col] * inv;
                if f == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[r * n + c] -= f * a[col * n + c];
                }
                x[r] -= f * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut v = x[col];
            for c in (col + 1)..n {
                v -= a[col * n + c] * x[c];
            }
            x[col] = v / a[col * n + col];
        }
        Ok(x)
    }

    /// Solves `self · x ≈ b` in the least-squares sense via the normal
    /// equations `(AᵀA + λI) x = Aᵀb`. A small Tikhonov `ridge` keeps the
    /// system well-posed when measurements are nearly collinear (Buzz with
    /// near-field-coupled tags produces exactly that).
    pub fn least_squares(&self, b: &[f64], ridge: f64) -> Result<Vec<f64>> {
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        if self.rows < self.cols {
            return Err(Error::SingularSystem {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let at = self.transpose();
        let mut ata = at.mul(self);
        for i in 0..self.cols {
            ata[(i, i)] += ridge;
        }
        let atb = at.mul_vec(b);
        ata.solve(&atb)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    // Tests assert bit-exact values deliberately: the arithmetic under test
    // must be exact, not approximate.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn identity_and_indexing() {
        let i3 = Matrix::identity(3);
        assert_eq!(i3[(0, 0)], 1.0);
        assert_eq!(i3[(0, 1)], 0.0);
        let v = i3.mul_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn mul_known_product() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_rows(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let p = a.mul(&b);
        assert_eq!(p, Matrix::from_rows(2, 2, vec![19.0, 22.0, 43.0, 50.0]));
    }

    #[test]
    fn solve_known_system() {
        // x + 2y = 5; 3x - y = 1 → x = 1, y = 2.
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, -1.0]);
        let x = a.solve(&[5.0, 1.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = a.solve(&[3.0, 4.0]).unwrap();
        assert_eq!(x, vec![4.0, 3.0]);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(Error::SingularSystem { .. })
        ));
    }

    #[test]
    fn least_squares_overdetermined() {
        // Fit y = 2x + 1 from noisy-free samples; 4 equations, 2 unknowns.
        let a = Matrix::from_rows(4, 2, vec![0.0, 1.0, 1.0, 1.0, 2.0, 1.0, 3.0, 1.0]);
        let b = [1.0, 3.0, 5.0, 7.0];
        let x = a.least_squares(&b, 0.0).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_underdetermined_rejected() {
        let a = Matrix::from_rows(1, 2, vec![1.0, 1.0]);
        assert!(a.least_squares(&[1.0], 0.0).is_err());
    }

    #[test]
    fn ridge_stabilizes_collinear_columns() {
        // Two identical columns: plain normal equations are singular; the
        // ridge makes them solvable.
        let a = Matrix::from_rows(3, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        assert!(a.least_squares(&[2.0, 4.0, 6.0], 0.0).is_err());
        let x = a.least_squares(&[2.0, 4.0, 6.0], 1e-6).unwrap();
        assert!((x[0] + x[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn solve_larger_random_like_system() {
        // Deterministic well-conditioned 6x6 system: A = I*5 + small values.
        let n = 6;
        let mut a = Matrix::identity(n);
        for r in 0..n {
            for c in 0..n {
                a[(r, c)] += ((r * 7 + c * 3) % 5) as f64 * 0.1;
                if r == c {
                    a[(r, c)] += 4.0;
                }
            }
        }
        let truth: Vec<f64> = (0..n).map(|i| i as f64 - 2.5).collect();
        let b = a.mul_vec(&truth);
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&truth) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }
}
