//! Eye-pattern folding (§3.2).
//!
//! "The analog value of a signal sample s(t) is added to the analog signal
//! sample that is T seconds ahead … The eye pattern is determined for each
//! possible offset, and used to detect the presence of a stream. The benefit
//! of such folding is that it helps smooth out noise."
//!
//! We fold *edge events* (sparse, already extracted) rather than every raw
//! sample: it is mathematically the same accumulation restricted to the
//! samples that carry edge energy, and it keeps the stream search fast even
//! at 25 Msps. Folding the raw edge-strength series is also provided for
//! completeness and for the spurious-edge ablation.

/// A folded histogram: accumulated strength per offset bin over one period.
#[derive(Debug, Clone)]
pub struct FoldedHistogram {
    /// Accumulated weight per bin.
    pub bins: Vec<f64>,
    /// Number of events accumulated per bin.
    pub counts: Vec<usize>,
    /// The folding period in samples.
    pub period: f64,
}

impl Default for FoldedHistogram {
    /// An empty placeholder (no bins, unit period) for reusable scratch
    /// histograms that [`FoldTable::fold_within_to`] overwrites before use.
    fn default() -> Self {
        FoldedHistogram {
            bins: Vec::new(),
            counts: Vec::new(),
            period: 1.0,
        }
    }
}

impl FoldedHistogram {
    /// Width of one bin in samples.
    pub fn bin_width(&self) -> f64 {
        self.period / self.bins.len() as f64
    }

    /// Converts a bin index back to an offset in samples (bin centre).
    pub fn offset_of_bin(&self, bin: usize) -> f64 {
        (bin as f64 + 0.5) * self.bin_width()
    }

    /// The circular local maxima of the histogram whose weight is at least
    /// `min_weight`, each separated from a stronger peak by at least
    /// `min_separation_bins`. Returns `(bin, weight)` pairs sorted by
    /// descending weight.
    pub fn peaks(&self, min_weight: f64, min_separation_bins: usize) -> Vec<(usize, f64)> {
        let n = self.bins.len();
        if n == 0 {
            return Vec::new();
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| self.bins[b].total_cmp(&self.bins[a]));
        let mut taken: Vec<usize> = Vec::new();
        for &i in &order {
            if self.bins[i] < min_weight {
                break;
            }
            let clear = taken.iter().all(|&t| {
                let d = i.abs_diff(t);
                d.min(n - d) >= min_separation_bins
            });
            if clear {
                taken.push(i);
            }
        }
        taken.into_iter().map(|i| (i, self.bins[i])).collect()
    }
}

/// Folds weighted events (`times` in samples, arbitrary but matching
/// `weights`) at `period` samples into `nbins` offset bins.
///
/// Panics if `period` or `nbins` is non-positive, or the slices disagree in
/// length.
pub fn fold_events(times: &[f64], weights: &[f64], period: f64, nbins: usize) -> FoldedHistogram {
    assert!(period > 0.0, "period must be positive");
    assert!(nbins > 0, "need at least one bin");
    assert_eq!(times.len(), weights.len(), "times/weights length mismatch");
    let _span = lf_obs::span!("dsp.fold");
    let mut bins = vec![0.0; nbins];
    let mut counts = vec![0usize; nbins];
    for (&t, &w) in times.iter().zip(weights) {
        let phase = t.rem_euclid(period) / period;
        let bin = ((phase * nbins as f64) as usize).min(nbins - 1);
        bins[bin] += w;
        counts[bin] += 1;
    }
    FoldedHistogram {
        bins,
        counts,
        period,
    }
}

/// A resumable fold accumulator over a fixed set of weighted events.
///
/// The stream search folds the *same* event set many times: once per
/// candidate rate per gather round, with events dropping out as accepted
/// streams claim them, and once more per candidate harmonic when a fused
/// stream's residual edges are re-folded. `FoldTable` holds the event set
/// once and folds any still-active subset at any period on demand —
/// [`FoldTable::retire`] removes a claimed event from every later fold
/// without rebuilding the time/weight arrays.
#[derive(Debug, Clone)]
pub struct FoldTable {
    times: Vec<f64>,
    weights: Vec<f64>,
    active: Vec<bool>,
}

impl FoldTable {
    /// Builds a table over `times`/`weights` (all events active).
    ///
    /// Panics if the slices disagree in length.
    pub fn new(times: Vec<f64>, weights: Vec<f64>) -> Self {
        assert_eq!(times.len(), weights.len(), "times/weights length mismatch");
        let active = vec![true; times.len()];
        FoldTable {
            times,
            weights,
            active,
        }
    }

    /// Builds a table with unit weights.
    pub fn with_unit_weights(times: Vec<f64>) -> Self {
        let weights = vec![1.0; times.len()];
        FoldTable::new(times, weights)
    }

    /// Number of events in the table (active or not).
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when the table holds no events at all.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Number of events still active.
    pub fn n_active(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Whether event `i` is still active.
    pub fn is_active(&self, i: usize) -> bool {
        self.active.get(i).copied().unwrap_or(false)
    }

    /// Removes event `i` from all subsequent folds (a stream claimed it).
    /// Out-of-range indices are ignored.
    pub fn retire(&mut self, i: usize) {
        if let Some(a) = self.active.get_mut(i) {
            *a = false;
        }
    }

    /// Folds the active events at `period` into `nbins` bins.
    ///
    /// Panics if `period` or `nbins` is non-positive.
    pub fn fold(&self, period: f64, nbins: usize) -> FoldedHistogram {
        self.fold_within(period, nbins, f64::INFINITY)
    }

    /// Folds the active events with `time < t_max` at `period` into
    /// `nbins` bins — the drift-safe-window fold of the stream search.
    ///
    /// Panics if `period` or `nbins` is non-positive.
    pub fn fold_within(&self, period: f64, nbins: usize, t_max: f64) -> FoldedHistogram {
        let mut out = FoldedHistogram {
            bins: Vec::new(),
            counts: Vec::new(),
            period,
        };
        self.fold_within_to(period, nbins, t_max, &mut out);
        out
    }

    /// As [`FoldTable::fold_within`], but accumulates into a caller-owned
    /// histogram instead of allocating one. The stream search folds the
    /// same table once per candidate rate per gather round; reusing `out`
    /// keeps those ~16 folds per epoch from allocating 2×`nbins` buffers
    /// each time.
    ///
    /// Panics if `period` or `nbins` is non-positive.
    pub fn fold_within_to(&self, period: f64, nbins: usize, t_max: f64, out: &mut FoldedHistogram) {
        assert!(period > 0.0, "period must be positive");
        assert!(nbins > 0, "need at least one bin");
        let _span = lf_obs::span!("dsp.fold");
        out.period = period;
        out.bins.clear();
        out.bins.resize(nbins, 0.0);
        out.counts.clear();
        out.counts.resize(nbins, 0);
        for ((&t, &w), &live) in self.times.iter().zip(&self.weights).zip(&self.active) {
            if !live || t >= t_max {
                continue;
            }
            let phase = t.rem_euclid(period) / period;
            let bin = ((phase * nbins as f64) as usize).min(nbins - 1);
            out.bins[bin] += w;
            out.counts[bin] += 1;
        }
    }
}

/// One fold request for [`FoldTable::fold_many_within_to`]: the period and
/// bin count of the histogram plus the drift-safe window bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FoldSpec {
    /// Folding period in samples. Must be positive.
    pub period: f64,
    /// Number of offset bins. Must be positive.
    pub nbins: usize,
    /// Events with `time >= t_max` are excluded from this fold.
    pub t_max: f64,
}

impl FoldTable {
    /// Folds the active events at every period in `specs` in **one pass
    /// over the event set**, writing histogram `i` of `outs` from spec `i`
    /// (growing `outs` with default histograms as needed; extra trailing
    /// histograms are left untouched).
    ///
    /// The stream search folds the same table at every candidate rate each
    /// gather round; batching those folds reads the times/weights/active
    /// arrays once per round instead of once per rate. Each histogram is
    /// bit-identical to a separate [`FoldTable::fold_within_to`] call with
    /// the same spec: the per-spec accumulation visits events in ascending
    /// order either way (blocks are consumed in order, and within a block
    /// each spec walks the events in order), and histograms never
    /// interact.
    ///
    /// The sweep is *blocked*: events are consumed in cache-sized runs
    /// with the spec loop outside the run. Pure event-major iteration
    /// (specs innermost, one event at a time) reloads every spec's period
    /// and histogram pointers per event and defeats loop-invariant
    /// hoisting — measured slower than k separate folds at ci edge
    /// counts. The blocked layout keeps the single pass over the event
    /// arrays while giving each (spec, block) inner loop the same tight
    /// shape as a dedicated single-period fold.
    ///
    /// Panics if any spec has a non-positive `period` or `nbins`.
    pub fn fold_many_within_to(&self, specs: &[FoldSpec], outs: &mut Vec<FoldedHistogram>) {
        let _span = lf_obs::span!("dsp.fold");
        if outs.len() < specs.len() {
            outs.resize_with(specs.len(), FoldedHistogram::default);
        }
        for (spec, out) in specs.iter().zip(outs.iter_mut()) {
            assert!(spec.period > 0.0, "period must be positive");
            assert!(spec.nbins > 0, "need at least one bin");
            out.period = spec.period;
            out.bins.clear();
            out.bins.resize(spec.nbins, 0.0);
            out.counts.clear();
            out.counts.resize(spec.nbins, 0);
        }
        // 256 events × (8 B time + 8 B weight + 1 B active) ≈ 4.25 KiB —
        // comfortably L1-resident alongside the histograms being filled.
        const BLOCK: usize = 256;
        let n = self.times.len();
        let mut start = 0usize;
        while start < n {
            let end = (start + BLOCK).min(n);
            let (times, weights, active) = (
                &self.times[start..end],
                &self.weights[start..end],
                &self.active[start..end],
            );
            for (spec, out) in specs.iter().zip(outs.iter_mut()) {
                let (period, nbins, t_max) = (spec.period, spec.nbins, spec.t_max);
                for ((&t, &w), &live) in times.iter().zip(weights).zip(active) {
                    if !live || t >= t_max {
                        continue;
                    }
                    let phase = t.rem_euclid(period) / period;
                    let bin = ((phase * nbins as f64) as usize).min(nbins - 1);
                    out.bins[bin] += w;
                    out.counts[bin] += 1;
                }
            }
            start = end;
        }
    }
}

/// Folds a dense strength series (one value per sample) at `period` samples.
pub fn fold_series(series: &[f64], period: f64, nbins: usize) -> FoldedHistogram {
    assert!(period > 0.0, "period must be positive");
    assert!(nbins > 0, "need at least one bin");
    let mut bins = vec![0.0; nbins];
    let mut counts = vec![0usize; nbins];
    for (t, &v) in series.iter().enumerate() {
        let phase = (t as f64).rem_euclid(period) / period;
        let bin = ((phase * nbins as f64) as usize).min(nbins - 1);
        bins[bin] += v;
        counts[bin] += 1;
    }
    FoldedHistogram {
        bins,
        counts,
        period,
    }
}

#[cfg(test)]
mod tests {
    // Tests assert bit-exact values deliberately: the arithmetic under test
    // must be exact, not approximate.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn periodic_events_pile_into_one_bin() {
        // Events every 100 samples starting at 25.
        let times: Vec<f64> = (0..50).map(|k| 25.0 + 100.0 * k as f64).collect();
        let weights = vec![1.0; times.len()];
        let h = fold_events(&times, &weights, 100.0, 50);
        let peaks = h.peaks(10.0, 2);
        assert_eq!(peaks.len(), 1);
        let (bin, w) = peaks[0];
        assert_eq!(w, 50.0);
        assert!((h.offset_of_bin(bin) - 25.0).abs() <= h.bin_width());
    }

    #[test]
    fn wrong_period_spreads_energy() {
        let times: Vec<f64> = (0..50).map(|k| 25.0 + 101.0 * k as f64).collect();
        let weights = vec![1.0; times.len()];
        let h = fold_events(&times, &weights, 100.0, 50);
        // At the wrong period the events drift 1 sample per cycle and smear
        // across bins — no bin can hold more than a few events.
        let max = h.bins.iter().copied().fold(0.0, f64::max);
        assert!(max <= 5.0, "expected smeared fold, max bin = {max}");
    }

    #[test]
    fn two_streams_two_peaks() {
        let mut times: Vec<f64> = (0..40).map(|k| 10.0 + 200.0 * k as f64).collect();
        times.extend((0..40).map(|k| 110.0 + 200.0 * k as f64));
        let weights = vec![1.0; times.len()];
        let h = fold_events(&times, &weights, 200.0, 100);
        let peaks = h.peaks(20.0, 5);
        assert_eq!(peaks.len(), 2);
    }

    #[test]
    fn peak_separation_respects_wraparound() {
        // Peaks at bin 0 and bin 99 of a 100-bin histogram are adjacent on
        // the circle; with min separation 5 only the stronger survives.
        let times = vec![0.5; 30]
            .into_iter()
            .chain(vec![99.5; 20])
            .collect::<Vec<_>>();
        let weights = vec![1.0; times.len()];
        let h = fold_events(&times, &weights, 100.0, 100);
        let peaks = h.peaks(5.0, 5);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].0, 0);
    }

    #[test]
    fn series_folding_matches_event_folding() {
        let mut series = vec![0.0; 1000];
        for k in 0..10 {
            series[37 + 100 * k] = 2.0;
        }
        let h = fold_series(&series, 100.0, 100);
        assert_eq!(h.bins[37], 20.0);
        assert_eq!(h.counts.iter().sum::<usize>(), 1000);
    }

    #[test]
    fn negative_times_fold_correctly() {
        // rem_euclid keeps phases in [0, period) even for negative times.
        let h = fold_events(&[-1.0], &[1.0], 100.0, 100);
        assert_eq!(h.bins[99], 1.0);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        let _ = fold_events(&[1.0], &[1.0], 0.0, 10);
    }

    #[test]
    fn fold_table_matches_fold_events_when_all_active() {
        let times: Vec<f64> = (0..50).map(|k| 25.0 + 100.0 * k as f64).collect();
        let weights: Vec<f64> = (0..50).map(|k| 1.0 + (k % 3) as f64).collect();
        let table = FoldTable::new(times.clone(), weights.clone());
        let a = table.fold(100.0, 50);
        let b = fold_events(&times, &weights, 100.0, 50);
        assert_eq!(a.bins, b.bins);
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn retired_events_leave_the_fold() {
        let times: Vec<f64> = (0..10).map(|k| 25.0 + 100.0 * k as f64).collect();
        let mut table = FoldTable::with_unit_weights(times);
        assert_eq!(table.n_active(), 10);
        for i in 0..5 {
            table.retire(i);
        }
        assert_eq!(table.n_active(), 5);
        assert!(!table.is_active(0));
        assert!(table.is_active(5));
        let h = table.fold(100.0, 50);
        assert_eq!(h.bins.iter().sum::<f64>(), 5.0);
        // Retiring out of range is a no-op, not a panic.
        table.retire(10_000);
        assert_eq!(table.n_active(), 5);
    }

    #[test]
    fn fold_within_respects_the_window() {
        let times: Vec<f64> = (0..20).map(|k| 25.0 + 100.0 * k as f64).collect();
        let table = FoldTable::with_unit_weights(times);
        let h = table.fold_within(100.0, 50, 1000.0);
        // Only the 10 events strictly before t = 1000 fold.
        assert_eq!(h.bins.iter().sum::<f64>(), 10.0);
        let full = table.fold(100.0, 50);
        assert_eq!(full.bins.iter().sum::<f64>(), 20.0);
    }

    #[test]
    fn fold_within_to_reuses_and_matches() {
        let times: Vec<f64> = (0..20).map(|k| 25.0 + 100.0 * k as f64).collect();
        let table = FoldTable::with_unit_weights(times);
        let fresh = table.fold_within(100.0, 50, 1000.0);
        let mut out = FoldedHistogram::default();
        // Dirty the scratch with a differently-shaped fold first: the
        // second fold must fully overwrite it.
        table.fold_within_to(77.0, 13, f64::INFINITY, &mut out);
        table.fold_within_to(100.0, 50, 1000.0, &mut out);
        assert_eq!(out.bins, fresh.bins);
        assert_eq!(out.counts, fresh.counts);
        assert_eq!(out.period, fresh.period);
    }

    #[test]
    fn fold_many_matches_repeated_single_folds_bitwise() {
        // Irregular times and weights, some events retired, windows that
        // cut different prefixes: the batched fold must agree bit-for-bit
        // with one fold_within_to per spec.
        let times: Vec<f64> = (0..200)
            .map(|k| 13.7 * k as f64 + ((k * k) % 29) as f64 * 0.31)
            .collect();
        let weights: Vec<f64> = (0..200).map(|k| 0.5 + ((k * 7) % 11) as f64).collect();
        let mut table = FoldTable::new(times, weights);
        for i in (0..200).step_by(7) {
            table.retire(i);
        }
        let specs = [
            FoldSpec {
                period: 100.0,
                nbins: 50,
                t_max: f64::INFINITY,
            },
            FoldSpec {
                period: 37.3,
                nbins: 24,
                t_max: 1500.0,
            },
            FoldSpec {
                period: 250.0,
                nbins: 125,
                t_max: 900.0,
            },
        ];
        let mut batched: Vec<FoldedHistogram> = Vec::new();
        // Pre-seed with one dirty histogram to check full overwrite, and
        // verify the vec grows to cover all specs.
        batched.push(table.fold_within(7.0, 3, f64::INFINITY));
        table.fold_many_within_to(&specs, &mut batched);
        assert_eq!(batched.len(), specs.len());
        for (spec, got) in specs.iter().zip(&batched) {
            let mut want = FoldedHistogram::default();
            table.fold_within_to(spec.period, spec.nbins, spec.t_max, &mut want);
            assert_eq!(got.bins, want.bins);
            assert_eq!(got.counts, want.counts);
            assert_eq!(got.period, want.period);
        }
    }

    #[test]
    fn fold_many_leaves_extra_histograms_untouched() {
        let table = FoldTable::with_unit_weights(vec![5.0, 105.0]);
        let mut outs = vec![FoldedHistogram::default(); 3];
        outs[2].period = 42.0;
        table.fold_many_within_to(
            &[FoldSpec {
                period: 100.0,
                nbins: 10,
                t_max: f64::INFINITY,
            }],
            &mut outs,
        );
        assert_eq!(outs[0].bins.iter().sum::<f64>(), 2.0);
        assert_eq!(outs[2].period, 42.0);
        assert!(outs[2].bins.is_empty());
    }

    #[test]
    fn fold_table_refolds_at_a_sub_period() {
        // Events every 200 samples look 5 kbps-periodic; re-folding the
        // same table at the 100-sample sub-period is the carve's re-fold.
        let times: Vec<f64> = (0..30).map(|k| 100.0 + 200.0 * k as f64).collect();
        let table = FoldTable::with_unit_weights(times);
        let coarse = table.fold(200.0, 100);
        let fine = table.fold(100.0, 50);
        assert_eq!(coarse.bins.iter().sum::<f64>(), 30.0);
        assert_eq!(fine.bins.iter().sum::<f64>(), 30.0);
        assert_eq!(fine.peaks(10.0, 2).len(), 1);
    }
}
