//! Moving averages and windowed reductions over sample streams.
//!
//! Edge extraction (§3.1) averages "a set of points between the previous
//! edge to the current edge" on each side of a candidate edge to beat down
//! noise before taking the IQ differential; these helpers implement that
//! averaging for both real and complex series.

use lf_types::Complex;

/// Centred boxcar moving average of width `window` (clamped at the ends).
/// `window` must be ≥ 1; even widths are biased half a sample late, which
/// is irrelevant for our use (thresholding a magnitude series).
pub fn moving_average(series: &[f64], window: usize) -> Vec<f64> {
    let mut prefix = Vec::new();
    let mut out = Vec::new();
    moving_average_into(series, window, &mut prefix, &mut out);
    out
}

/// As [`moving_average`], but writes into caller-owned buffers (`prefix`
/// holds the running prefix sums, `out` the averages) so repeated calls
/// reuse their allocations. Produces exactly the same values as
/// [`moving_average`]: the prefix-sum construction and the per-window
/// difference are unchanged.
pub fn moving_average_into(
    series: &[f64],
    window: usize,
    prefix: &mut Vec<f64>,
    out: &mut Vec<f64>,
) {
    assert!(window >= 1, "window must be >= 1");
    let n = series.len();
    prefix.clear();
    out.clear();
    if n == 0 {
        return;
    }
    let half = window / 2;
    // Prefix sums for O(n).
    prefix.reserve(n + 1);
    prefix.push(0.0);
    let mut acc = 0.0;
    for &v in series {
        acc += v;
        prefix.push(acc);
    }
    out.reserve(n);
    out.extend((0..n).map(|i| {
        let lo = i.saturating_sub(half);
        let hi = (i + window - half).min(n);
        (prefix[hi] - prefix[lo]) / (hi - lo) as f64
    }));
}

/// Mean of `series[lo..hi]` with the bounds clamped to the series; returns
/// zero for an empty intersection.
pub fn mean_range(series: &[Complex], lo: isize, hi: isize) -> Complex {
    let n = series.len() as isize;
    let lo = lo.clamp(0, n) as usize;
    let hi = hi.clamp(0, n) as usize;
    if lo >= hi {
        return Complex::ZERO;
    }
    Complex::mean(&series[lo..hi])
}

/// Magnitude of the first difference of a complex series, at a `gap`:
/// `|s[t+gap] − s[t]|` for every valid `t`. The raw material for edge
/// candidate detection: an antenna toggle with an `gap`-sample rise time
/// shows as a localized bump in this series.
pub fn diff_magnitude(series: &[Complex], gap: usize) -> Vec<f64> {
    assert!(gap >= 1, "gap must be >= 1");
    if series.len() <= gap {
        return Vec::new();
    }
    (0..series.len() - gap)
        .map(|t| (series[t + gap] - series[t]).abs())
        .collect()
}

#[cfg(test)]
mod tests {
    // Tests assert bit-exact values deliberately: the arithmetic under test
    // must be exact, not approximate.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn moving_average_flat_series() {
        let s = vec![2.0; 10];
        assert_eq!(moving_average(&s, 3), vec![2.0; 10]);
    }

    #[test]
    fn moving_average_smooths_impulse() {
        let mut s = vec![0.0; 9];
        s[4] = 3.0;
        let m = moving_average(&s, 3);
        assert!((m[3] - 1.0).abs() < 1e-12);
        assert!((m[4] - 1.0).abs() < 1e-12);
        assert!((m[5] - 1.0).abs() < 1e-12);
        assert_eq!(m[0], 0.0);
    }

    #[test]
    fn moving_average_window_one_is_identity() {
        let s = [1.0, -2.0, 3.5];
        assert_eq!(moving_average(&s, 1), s.to_vec());
    }

    #[test]
    fn moving_average_into_reuses_and_matches() {
        let s: Vec<f64> = (0..40).map(|k| (k as f64 * 0.37).sin()).collect();
        let fresh = moving_average(&s, 7);
        let mut prefix = vec![9.9; 3]; // dirty scratch must be overwritten
        let mut out = vec![1.0; 100];
        moving_average_into(&s, 7, &mut prefix, &mut out);
        assert_eq!(out, fresh);
    }

    #[test]
    fn moving_average_edges_clamp() {
        let s = [1.0, 2.0, 3.0];
        let m = moving_average(&s, 5);
        // Every window covers the full series at len 3 with window 5 clamped.
        assert!((m[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_range_clamps_and_handles_empty() {
        let s = [
            Complex::new(1.0, 0.0),
            Complex::new(2.0, 0.0),
            Complex::new(3.0, 0.0),
        ];
        assert!(mean_range(&s, -5, 2).approx_eq(Complex::new(1.5, 0.0), 1e-12));
        assert!(mean_range(&s, 1, 100).approx_eq(Complex::new(2.5, 0.0), 1e-12));
        assert_eq!(mean_range(&s, 2, 2), Complex::ZERO);
        assert_eq!(mean_range(&s, 3, 1), Complex::ZERO);
    }

    #[test]
    fn diff_magnitude_detects_step() {
        let mut s = vec![Complex::ZERO; 10];
        for z in s.iter_mut().skip(5) {
            *z = Complex::new(1.0, 1.0);
        }
        let d = diff_magnitude(&s, 1);
        assert_eq!(d.len(), 9);
        let peak = d
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert_eq!(peak.0, 4);
        assert!((peak.1 - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn diff_magnitude_short_series() {
        assert!(diff_magnitude(&[Complex::ONE], 1).is_empty());
        assert!(diff_magnitude(&[], 3).is_empty());
    }
}
