//! Local-maximum detection with threshold and dead zone.
//!
//! Edge extraction (§3.1) turns the IQ-differential magnitude series into a
//! sparse list of candidate edge positions: a sample is an edge candidate
//! when it is a local maximum, exceeds a noise-derived threshold, and no
//! stronger candidate lies within the edge width (the dead zone prevents a
//! single 3-sample-wide edge from being reported three times).

/// A detected peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Sample index of the peak.
    pub index: usize,
    /// Value at the peak.
    pub value: f64,
}

/// Finds local maxima of `series` that are `>= threshold`, enforcing that
/// peaks are at least `min_distance` samples apart (stronger peaks win).
/// Returned peaks are sorted by index.
pub fn find_peaks(series: &[f64], threshold: f64, min_distance: usize) -> Vec<Peak> {
    let n = series.len();
    if n == 0 {
        return Vec::new();
    }
    // Collect strict-or-plateau local maxima above threshold.
    let mut candidates: Vec<Peak> = Vec::new();
    let mut i = 0;
    while i < n {
        let v = series[i];
        if v < threshold {
            i += 1;
            continue;
        }
        // Plateau handling: advance to the end of a run of equal values and
        // report its centre.
        let start = i;
        while i + 1 < n && series[i + 1].total_cmp(&v).is_eq() {
            i += 1;
        }
        let left_ok = start == 0 || series[start - 1] < v;
        let right_ok = i + 1 == n || series[i + 1] < v;
        if left_ok && right_ok {
            candidates.push(Peak {
                index: (start + i) / 2,
                value: v,
            });
        }
        i += 1;
    }
    if min_distance <= 1 || candidates.len() <= 1 {
        return candidates;
    }
    // Dead-zone suppression: keep strongest first.
    let mut by_strength: Vec<usize> = (0..candidates.len()).collect();
    by_strength.sort_by(|&a, &b| candidates[b].value.total_cmp(&candidates[a].value));
    let mut kept = vec![false; candidates.len()];
    let mut kept_indices: Vec<usize> = Vec::new();
    for &c in &by_strength {
        let idx = candidates[c].index;
        if kept_indices
            .iter()
            .all(|&k| idx.abs_diff(k) >= min_distance)
        {
            kept[c] = true;
            kept_indices.push(idx);
        }
    }
    let mut out: Vec<Peak> = candidates
        .into_iter()
        .zip(kept)
        .filter_map(|(p, k)| k.then_some(p))
        .collect();
    out.sort_by_key(|p| p.index);
    out
}

/// Estimates a detection threshold from a series as
/// `median + k · MAD·1.4826` (a robust sigma estimate). Robust statistics
/// matter here: the series *is* mostly noise punctuated by large edges, and
/// a mean/σ threshold would be dragged up by the very edges we want to
/// detect.
pub fn robust_threshold(series: &[f64], k: f64) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    let med = crate::stats::median(series);
    let deviations: Vec<f64> = series.iter().map(|x| (x - med).abs()).collect();
    let mad = crate::stats::median(&deviations);
    med + k * mad * 1.4826
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_peak() {
        let s = [0.0, 0.1, 1.0, 0.1, 0.0];
        let p = find_peaks(&s, 0.5, 1);
        assert_eq!(
            p,
            vec![Peak {
                index: 2,
                value: 1.0
            }]
        );
    }

    #[test]
    fn threshold_filters() {
        let s = [0.0, 0.4, 0.0, 0.9, 0.0];
        let p = find_peaks(&s, 0.5, 1);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].index, 3);
    }

    #[test]
    fn plateau_reports_centre_once() {
        let s = [0.0, 1.0, 1.0, 1.0, 0.0];
        let p = find_peaks(&s, 0.5, 1);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].index, 2);
    }

    #[test]
    fn dead_zone_keeps_strongest() {
        let s = [0.0, 0.8, 0.0, 1.0, 0.0, 0.7, 0.0];
        // min_distance 3: peaks at 1, 3, 5; 3 is strongest, suppresses both.
        let p = find_peaks(&s, 0.5, 3);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].index, 3);
        // min_distance 2: 3 wins, 1 and 5 are exactly 2 away → kept.
        let p = find_peaks(&s, 0.5, 2);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn edges_of_series_can_peak() {
        let s = [1.0, 0.5, 0.0, 0.5, 1.0];
        let p = find_peaks(&s, 0.5, 1);
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].index, 0);
        assert_eq!(p[1].index, 4);
    }

    #[test]
    fn empty_series() {
        assert!(find_peaks(&[], 0.0, 1).is_empty());
    }

    #[test]
    fn robust_threshold_ignores_sparse_spikes() {
        // Mostly small noise with a few huge spikes: threshold must stay
        // near the noise floor, not be dragged up by spikes.
        let mut s = vec![0.1; 1000];
        for k in 0..10 {
            s[k * 100] = 50.0;
        }
        let th = robust_threshold(&s, 6.0);
        assert!(th < 1.0, "threshold {th} dragged up by spikes");
        assert!(th >= 0.1);
    }

    #[test]
    fn peaks_sorted_by_index() {
        let s = [0.0, 0.9, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.8, 0.0];
        let p = find_peaks(&s, 0.5, 2);
        let idx: Vec<usize> = p.iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![1, 5, 8]);
    }
}
