//! Local-maximum detection with threshold and dead zone.
//!
//! Edge extraction (§3.1) turns the IQ-differential magnitude series into a
//! sparse list of candidate edge positions: a sample is an edge candidate
//! when it is a local maximum, exceeds a noise-derived threshold, and no
//! stronger candidate lies within the edge width (the dead zone prevents a
//! single 3-sample-wide edge from being reported three times).

/// A detected peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Sample index of the peak.
    pub index: usize,
    /// Value at the peak.
    pub value: f64,
}

/// Finds local maxima of `series` that are `>= threshold`, enforcing that
/// peaks are at least `min_distance` samples apart (stronger peaks win).
/// Returned peaks are sorted by index.
pub fn find_peaks(series: &[f64], threshold: f64, min_distance: usize) -> Vec<Peak> {
    let n = series.len();
    if n == 0 {
        return Vec::new();
    }
    // Collect strict-or-plateau local maxima above threshold. The skip
    // scan vaults over sub-threshold runs (most of a quiet capture) with
    // the SIMD compare kernel; its stop predicate `!(v < threshold)` is
    // exactly the complement of the branch it replaces, NaN included.
    let mut candidates: Vec<Peak> = Vec::new();
    let mut i = 0;
    while i < n {
        // Only dispatch the skip kernel when the current sample is below
        // threshold: `first_at_or_above` returns `i` unchanged whenever
        // `series[i] >= threshold` (its stop predicate holds immediately),
        // so the guard is exact and saves a per-sample dispatch during
        // dense above-threshold runs.
        if series[i] < threshold {
            i = crate::simd::first_at_or_above(series, i, threshold);
            if i >= n {
                break;
            }
        }
        let v = series[i];
        // Plateau handling: advance to the end of a run of equal values and
        // report its centre.
        let start = i;
        while i + 1 < n && series[i + 1].total_cmp(&v).is_eq() {
            i += 1;
        }
        let left_ok = start == 0 || series[start - 1] < v;
        let right_ok = i + 1 == n || series[i + 1] < v;
        if left_ok && right_ok {
            candidates.push(Peak {
                index: (start + i) / 2,
                value: v,
            });
        }
        i += 1;
    }
    if min_distance <= 1 || candidates.len() <= 1 {
        return candidates;
    }
    // Dead-zone suppression: keep strongest first. The kept set stays
    // sorted by index, so a candidate only has to clear its nearest kept
    // neighbour on each side — every other kept peak is further away.
    // Replaces the old all-pairs scan (O(k²) for k candidates) without
    // changing which peaks survive: the strongest-first visit order and
    // the distance predicate are identical.
    let mut by_strength: Vec<usize> = (0..candidates.len()).collect();
    by_strength.sort_by(|&a, &b| candidates[b].value.total_cmp(&candidates[a].value));
    let mut kept = vec![false; candidates.len()];
    let mut kept_sorted: Vec<usize> = Vec::with_capacity(candidates.len());
    for &c in &by_strength {
        let idx = candidates[c].index;
        let pos = kept_sorted.partition_point(|&k| k < idx);
        let left_ok = pos == 0 || idx - kept_sorted[pos - 1] >= min_distance;
        let right_ok = pos == kept_sorted.len() || kept_sorted[pos] - idx >= min_distance;
        if left_ok && right_ok {
            kept[c] = true;
            kept_sorted.insert(pos, idx);
        }
    }
    let mut out: Vec<Peak> = candidates
        .into_iter()
        .zip(kept)
        .filter_map(|(p, k)| k.then_some(p))
        .collect();
    out.sort_by_key(|p| p.index);
    out
}

/// Estimates a detection threshold from a series as
/// `median + k · MAD·1.4826` (a robust sigma estimate). Robust statistics
/// matter here: the series *is* mostly noise punctuated by large edges, and
/// a mean/σ threshold would be dragged up by the very edges we want to
/// detect.
pub fn robust_threshold(series: &[f64], k: f64) -> f64 {
    let mut buf = series.to_vec();
    robust_threshold_inplace(&mut buf, k)
}

/// As [`robust_threshold`], but permutes `buf` instead of allocating: one
/// quickselect for the median, an in-place rewrite to absolute deviations,
/// and a second quickselect for the MAD. The deviations are computed from
/// the permuted buffer, which holds the same multiset of values — the MAD
/// (an order statistic) is bit-identical to the allocating version's.
pub fn robust_threshold_inplace(buf: &mut [f64], k: f64) -> f64 {
    if buf.is_empty() {
        return 0.0;
    }
    let med = crate::stats::median_inplace(buf);
    for x in buf.iter_mut() {
        *x = (*x - med).abs();
    }
    let mad = crate::stats::median_inplace(buf);
    med + k * mad * 1.4826
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_peak() {
        let s = [0.0, 0.1, 1.0, 0.1, 0.0];
        let p = find_peaks(&s, 0.5, 1);
        assert_eq!(
            p,
            vec![Peak {
                index: 2,
                value: 1.0
            }]
        );
    }

    #[test]
    fn threshold_filters() {
        let s = [0.0, 0.4, 0.0, 0.9, 0.0];
        let p = find_peaks(&s, 0.5, 1);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].index, 3);
    }

    #[test]
    fn plateau_reports_centre_once() {
        let s = [0.0, 1.0, 1.0, 1.0, 0.0];
        let p = find_peaks(&s, 0.5, 1);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].index, 2);
    }

    #[test]
    fn dead_zone_keeps_strongest() {
        let s = [0.0, 0.8, 0.0, 1.0, 0.0, 0.7, 0.0];
        // min_distance 3: peaks at 1, 3, 5; 3 is strongest, suppresses both.
        let p = find_peaks(&s, 0.5, 3);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].index, 3);
        // min_distance 2: 3 wins, 1 and 5 are exactly 2 away → kept.
        let p = find_peaks(&s, 0.5, 2);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn edges_of_series_can_peak() {
        let s = [1.0, 0.5, 0.0, 0.5, 1.0];
        let p = find_peaks(&s, 0.5, 1);
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].index, 0);
        assert_eq!(p[1].index, 4);
    }

    #[test]
    fn empty_series() {
        assert!(find_peaks(&[], 0.0, 1).is_empty());
    }

    #[test]
    fn robust_threshold_ignores_sparse_spikes() {
        // Mostly small noise with a few huge spikes: threshold must stay
        // near the noise floor, not be dragged up by spikes.
        let mut s = vec![0.1; 1000];
        for k in 0..10 {
            s[k * 100] = 50.0;
        }
        let th = robust_threshold(&s, 6.0);
        assert!(th < 1.0, "threshold {th} dragged up by spikes");
        assert!(th >= 0.1);
    }

    /// The sorted-insertion dead zone must keep exactly the peaks the old
    /// all-pairs scan kept, and the in-place robust threshold must be
    /// bit-identical to the allocating reference, across a spread of
    /// pseudo-random series.
    #[test]
    fn optimized_paths_match_reference_bitwise() {
        let reference_threshold = |series: &[f64], k: f64| -> f64 {
            if series.is_empty() {
                return 0.0;
            }
            let med = crate::stats::median(series);
            let deviations: Vec<f64> = series.iter().map(|x| (x - med).abs()).collect();
            let mad = crate::stats::median(&deviations);
            med + k * mad * 1.4826
        };
        let reference_peaks = |series: &[f64], threshold: f64, min_distance: usize| {
            // Candidates come from the shared plateau scan; only the dead
            // zone differed, so re-run it the O(k²) way.
            let candidates = find_peaks(series, threshold, 1);
            let mut by_strength: Vec<usize> = (0..candidates.len()).collect();
            by_strength.sort_by(|&a, &b| candidates[b].value.total_cmp(&candidates[a].value));
            let mut kept_indices: Vec<usize> = Vec::new();
            for &c in &by_strength {
                let idx = candidates[c].index;
                if kept_indices
                    .iter()
                    .all(|&k| idx.abs_diff(k) >= min_distance)
                {
                    kept_indices.push(idx);
                }
            }
            kept_indices.sort_unstable();
            kept_indices
        };
        let mut state = 0x2545_f491_4f6c_dd1d_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1_u64 << 53) as f64
        };
        for round in 0..8 {
            let n = 200 + round * 37;
            let series: Vec<f64> = (0..n).map(|_| next()).collect();
            let k = 3.0 + round as f64;
            let th = reference_threshold(&series, k);
            let mut buf = series.clone();
            assert_eq!(robust_threshold(&series, k).to_bits(), th.to_bits());
            assert_eq!(
                robust_threshold_inplace(&mut buf, k).to_bits(),
                th.to_bits()
            );
            for min_distance in [2_usize, 5, 17] {
                let got: Vec<usize> = find_peaks(&series, th, min_distance)
                    .iter()
                    .map(|p| p.index)
                    .collect();
                assert_eq!(got, reference_peaks(&series, th, min_distance));
            }
        }
    }

    #[test]
    fn peaks_sorted_by_index() {
        let s = [0.0, 0.9, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.8, 0.0];
        let p = find_peaks(&s, 0.5, 2);
        let idx: Vec<usize> = p.iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![1, 5, 8]);
    }
}
