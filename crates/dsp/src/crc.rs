//! Cyclic redundancy checks.
//!
//! The node-identification protocol (§5.2) has each tag transmit its
//! "EPC Gen 2 identifier (96 bits + 5 bit CRC)". CRC-5 here is the EPC
//! Gen 2 variant (polynomial x⁵+x³+1, preset 01001). CRC-16/CCITT-FALSE is
//! provided for the longer sensor-data frames used by the throughput
//! experiments, where 5 bits of check would under-detect at 96+ bit
//! payloads.

use lf_types::BitVec;

/// EPC Gen 2 CRC-5: polynomial x⁵+x³+1 (0b01001 low bits), preset 0b01001.
#[derive(Debug, Clone, Copy)]
pub struct Crc5;

impl Crc5 {
    const POLY: u8 = 0b0_1001; // x⁵ + x³ + 1, x⁵ implicit
    const PRESET: u8 = 0b0_1001;

    /// Computes the 5-bit CRC of a bit sequence (MSB-first).
    pub fn compute(bits: &BitVec) -> u8 {
        let mut reg = Self::PRESET;
        for b in bits.iter() {
            let msb = (reg >> 4) & 1;
            reg = (reg << 1) & 0x1F;
            if msb ^ (b as u8) == 1 {
                reg ^= Self::POLY;
            }
        }
        reg & 0x1F
    }

    /// Appends the CRC to a copy of `bits` (payload then 5 check bits,
    /// MSB-first).
    pub fn append(bits: &BitVec) -> BitVec {
        let mut out = bits.clone();
        out.extend_from(&BitVec::from_u64(Self::compute(bits) as u64, 5));
        out
    }

    /// Verifies a payload+CRC sequence; returns the payload on success.
    pub fn verify(bits: &BitVec) -> Option<BitVec> {
        if bits.len() < 5 {
            return None;
        }
        let payload = bits.slice(0, bits.len() - 5);
        let check = bits.slice(bits.len() - 5, bits.len()).to_u64() as u8;
        (Self::compute(&payload) == check).then_some(payload)
    }
}

/// CRC-16/CCITT-FALSE: polynomial 0x1021, initial value 0xFFFF.
#[derive(Debug, Clone, Copy)]
pub struct Crc16Ccitt;

impl Crc16Ccitt {
    /// Computes the CRC over a bit sequence (MSB-first).
    pub fn compute(bits: &BitVec) -> u16 {
        let mut reg: u16 = 0xFFFF;
        for b in bits.iter() {
            let msb = (reg >> 15) & 1;
            reg <<= 1;
            if msb ^ (b as u16) == 1 {
                reg ^= 0x1021;
            }
        }
        reg
    }

    /// Computes the CRC over bytes (MSB-first per byte) — the conventional
    /// byte-oriented form, used for test vectors.
    pub fn compute_bytes(bytes: &[u8]) -> u16 {
        Self::compute(&BitVec::from_bytes(bytes))
    }

    /// Appends the 16 CRC bits to a copy of `bits`.
    pub fn append(bits: &BitVec) -> BitVec {
        let mut out = bits.clone();
        out.extend_from(&BitVec::from_u64(Self::compute(bits) as u64, 16));
        out
    }

    /// Verifies payload+CRC; returns the payload on success.
    pub fn verify(bits: &BitVec) -> Option<BitVec> {
        if bits.len() < 16 {
            return None;
        }
        let payload = bits.slice(0, bits.len() - 16);
        let check = bits.slice(bits.len() - 16, bits.len()).to_u64() as u16;
        (Self::compute(&payload) == check).then_some(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_known_vector() {
        // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
        assert_eq!(Crc16Ccitt::compute_bytes(b"123456789"), 0x29B1);
        assert_eq!(Crc16Ccitt::compute_bytes(b""), 0xFFFF);
    }

    #[test]
    fn crc5_round_trip() {
        let payload = BitVec::from_str_binary("1011001110001111000010101");
        let framed = Crc5::append(&payload);
        assert_eq!(framed.len(), payload.len() + 5);
        assert_eq!(Crc5::verify(&framed), Some(payload));
    }

    #[test]
    fn crc5_detects_single_bit_errors() {
        let payload = BitVec::from_u64(0xDEADBEEF, 32);
        let framed = Crc5::append(&payload);
        for i in 0..framed.len() {
            let mut corrupted: Vec<bool> = framed.iter().collect();
            corrupted[i] = !corrupted[i];
            let corrupted: BitVec = corrupted.into_iter().collect();
            assert_eq!(Crc5::verify(&corrupted), None, "missed error at bit {i}");
        }
    }

    #[test]
    fn crc16_round_trip_and_single_bit_errors() {
        let payload = BitVec::from_bytes(&[0x12, 0x34, 0x56, 0x78, 0x9A]);
        let framed = Crc16Ccitt::append(&payload);
        assert_eq!(Crc16Ccitt::verify(&framed), Some(payload));
        for i in 0..framed.len() {
            let mut corrupted: Vec<bool> = framed.iter().collect();
            corrupted[i] = !corrupted[i];
            let corrupted: BitVec = corrupted.into_iter().collect();
            assert_eq!(Crc16Ccitt::verify(&corrupted), None, "missed error at {i}");
        }
    }

    #[test]
    fn verify_rejects_short_input() {
        assert_eq!(Crc5::verify(&BitVec::from_str_binary("101")), None);
        assert_eq!(Crc16Ccitt::verify(&BitVec::from_str_binary("1")), None);
    }

    #[test]
    fn crc5_distinct_payloads_distinct_crcs_mostly() {
        // Sanity: CRC-5 over consecutive integers should not be constant.
        let crcs: std::collections::HashSet<u8> = (0..32u64)
            .map(|v| Crc5::compute(&BitVec::from_u64(v, 16)))
            .collect();
        assert!(crcs.len() > 16);
    }
}
