//! # lf-dsp
//!
//! Signal-processing primitives for the LF-Backscatter reproduction. These
//! are the reader-side building blocks the paper's decode pipeline is made
//! of, implemented from scratch (the repro target deliberately avoids
//! pulling a DSP ecosystem — see DESIGN.md §3):
//!
//! * [`stats`] — running moments, 2-D Gaussian fits (Viterbi emissions,
//!   §3.5), the Q-function used for analytic BER curves (Fig. 14).
//! * [`kmeans`] — k-means++ clustering over IQ points plus model selection
//!   between cluster counts (collision detection, §3.3 "performing k-means
//!   clustering and determining the best fit in terms of number of
//!   clusters").
//! * [`geometry`] — collinearity tests and the 9-centroid parallelogram
//!   solver that recovers the two edge vectors of a 2-tag collision (§3.4,
//!   Fig. 5).
//! * [`fold`] — eye-pattern folding (§3.2 "the analog value of a signal
//!   sample s(t) is added to the analog signal sample that is T seconds
//!   ahead").
//! * [`peaks`] — local-maximum detection with threshold and dead zone, used
//!   by edge extraction.
//! * [`viterbi`] — the 4-state edge-constraint Viterbi decoder (§3.5,
//!   Fig. 6).
//! * [`crc`] — CRC-5 (EPC Gen 2 inventory frames) and CRC-16/CCITT.
//! * [`linalg`] — small dense real matrices and least squares, used by the
//!   Buzz baseline's linear signal separation (Eq. 1).
//! * [`window`] — moving averages and boxcar smoothing.
//! * [`checks`] — NaN/∞ taint guards the pipeline wires at every stage
//!   boundary under the `strict-checks` feature (no-ops otherwise).
//! * [`simd`] — runtime-dispatched AVX-512 hot kernels over
//!   structure-of-arrays slices, with bit-identical scalar fallbacks
//!   (DESIGN.md §15).

// `deny`, not `forbid`: the `simd` module opts back in locally for the
// vendor intrinsics behind its runtime feature detection; everything else
// in the crate stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod checks;
pub mod crc;
pub mod fold;
pub mod geometry;
pub mod kmeans;
pub mod linalg;
pub mod peaks;
pub mod simd;
pub mod stats;
pub mod viterbi;
pub mod window;

pub use kmeans::{kmeans, select_cluster_count, KMeansResult};
pub use viterbi::{EdgeState, ViterbiDecoder};
