//! Statistics: running moments, 2-D Gaussians, and the Gaussian Q-function.
//!
//! The Viterbi stage (§3.5) fits "the IQ values that are empirically
//! observed to a two dimensional normal distribution
//! (Vi, Vq) ∼ N(µi, µq, σi, σq, r)" and uses it as the emission probability.
//! [`Gaussian2d`] is that distribution. The Q-function backs the analytic
//! ASK BER reference used to sanity-check the Fig. 14 Monte Carlo.

use lf_types::Complex;

/// Numerically stable running mean/variance (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The population variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// The population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// An axis-aligned 2-D Gaussian over the IQ plane.
///
/// The correlation term `r` in the paper's N(µi, µq, σi, σq, r) is dominated
/// by receiver noise, which is circularly symmetric, so we fit the
/// axis-aligned form; the Viterbi decoder only needs relative likelihoods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian2d {
    /// Mean of the in-phase component.
    pub mean_i: f64,
    /// Mean of the quadrature component.
    pub mean_q: f64,
    /// Variance of the in-phase component.
    pub var_i: f64,
    /// Variance of the quadrature component.
    pub var_q: f64,
}

impl Gaussian2d {
    /// Fits a Gaussian to a set of IQ points. `floor` is a variance floor
    /// that prevents a degenerate (zero-variance) fit when a cluster holds
    /// few or identical points — without it the log-pdf blows up and a
    /// single cluster can veto the Viterbi path.
    pub fn fit(points: &[Complex], floor: f64) -> Self {
        let mut si = RunningStats::new();
        let mut sq = RunningStats::new();
        for p in points {
            si.push(p.re);
            sq.push(p.im);
        }
        Gaussian2d {
            mean_i: si.mean(),
            mean_q: sq.mean(),
            var_i: si.variance().max(floor),
            var_q: sq.variance().max(floor),
        }
    }

    /// Constructs a Gaussian from explicit parameters.
    pub fn new(mean: Complex, var_i: f64, var_q: f64) -> Self {
        Gaussian2d {
            mean_i: mean.re,
            mean_q: mean.im,
            var_i,
            var_q,
        }
    }

    /// The mean as an IQ point.
    pub fn mean(&self) -> Complex {
        Complex::new(self.mean_i, self.mean_q)
    }

    /// Log probability density at `p` (up to the same additive constant for
    /// all Gaussians with equal variances — fine for ML path comparison,
    /// and we keep the per-Gaussian normalization term so unequal variances
    /// are compared correctly too).
    pub fn log_pdf(&self, p: Complex) -> f64 {
        let di = p.re - self.mean_i;
        let dq = p.im - self.mean_q;
        -0.5 * (di * di / self.var_i + dq * dq / self.var_q)
            - 0.5 * (self.var_i.ln() + self.var_q.ln())
    }
}

/// The Gaussian Q-function Q(x) = P(N(0,1) > x), via `erfc`.
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Complementary error function. Rust's std lacks `erfc`; this is the
/// Numerical-Recipes rational Chebyshev approximation, accurate to ~1.2e-7
/// everywhere — far below the Monte-Carlo noise of the BER experiments.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Mean of a slice (0 if empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance of a slice (0 if fewer than 2 elements).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Median of a slice (0 if empty). Does not require pre-sorted input.
pub fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    median_inplace(&mut v)
}

/// Median by in-place quickselect (0 if empty). Permutes `xs`; O(n)
/// expected instead of the O(n log n) full sort, and bit-identical to the
/// sort-based median: `total_cmp` is a total order in which ties are
/// bitwise-equal values, so "max of the lower partition" is the same value
/// a sort would have left at `len/2 - 1`.
pub fn median_inplace(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mid = xs.len() / 2;
    let odd = xs.len() % 2 == 1;
    let (lower, m, _) = xs.select_nth_unstable_by(mid, f64::total_cmp);
    if odd {
        *m
    } else {
        let hi = *m;
        let lo = lower.iter().copied().max_by(f64::total_cmp).unwrap_or(hi);
        0.5 * (lo + hi)
    }
}

/// Percentile (0–100) of a slice via nearest-rank; 0 if empty. Uses
/// quickselect rather than a full sort — the selected value is exactly the
/// element a sort would have placed at that rank.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    let rank = rank.min(v.len() - 1);
    *v.select_nth_unstable_by(rank, f64::total_cmp).1
}

#[cfg(test)]
mod tests {
    // Tests assert bit-exact values deliberately: the arithmetic under test
    // must be exact, not approximate.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn welford_matches_direct() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert_eq!(rs.count(), 8);
        assert!((rs.mean() - 5.0).abs() < 1e-12);
        assert!((rs.variance() - 4.0).abs() < 1e-12);
        assert!((rs.std_dev() - 2.0).abs() < 1e-12);
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let rs = RunningStats::new();
        assert_eq!(rs.mean(), 0.0);
        assert_eq!(rs.variance(), 0.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn gaussian_fit_recovers_moments() {
        let pts: Vec<Complex> = (0..100)
            .map(|k| Complex::new(1.0 + (k % 5) as f64 * 0.1, -2.0 + (k % 3) as f64 * 0.2))
            .collect();
        let g = Gaussian2d::fit(&pts, 1e-12);
        assert!((g.mean_i - 1.2).abs() < 1e-9);
        assert!((g.mean_q + 1.8).abs() < 0.02);
        assert!(g.var_i > 0.0 && g.var_q > 0.0);
    }

    #[test]
    fn gaussian_floor_prevents_degeneracy() {
        let pts = vec![Complex::new(1.0, 1.0); 10];
        let g = Gaussian2d::fit(&pts, 1e-6);
        assert_eq!(g.var_i, 1e-6);
        assert!(g.log_pdf(Complex::new(1.0, 1.0)).is_finite());
    }

    #[test]
    fn log_pdf_peaks_at_mean() {
        let g = Gaussian2d::new(Complex::new(0.5, -0.5), 0.01, 0.02);
        let at_mean = g.log_pdf(Complex::new(0.5, -0.5));
        assert!(at_mean > g.log_pdf(Complex::new(0.6, -0.5)));
        assert!(at_mean > g.log_pdf(Complex::new(0.5, -0.3)));
    }

    #[test]
    fn q_function_reference_values() {
        // Q(0)=0.5, Q(1)≈0.158655, Q(2)≈0.022750, Q(3)≈1.3499e-3.
        assert!((q_function(0.0) - 0.5).abs() < 1e-7);
        assert!((q_function(1.0) - 0.158655).abs() < 1e-5);
        assert!((q_function(2.0) - 0.0227501).abs() < 1e-5);
        assert!((q_function(3.0) - 1.3499e-3).abs() < 1e-6);
        // Symmetry: Q(-x) = 1 - Q(x).
        assert!((q_function(-1.5) - (1.0 - q_function(1.5))).abs() < 1e-7);
    }

    #[test]
    fn erfc_bounds() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!(erfc(5.0) < 1e-10);
        assert!((erfc(-5.0) - 2.0).abs() < 1e-10);
    }

    #[test]
    fn median_and_percentile() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(median(&xs), 3.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
    }

    /// The quickselect median must be bit-identical to the full-sort
    /// median it replaced, including duplicate runs and signed zeros.
    #[test]
    fn quickselect_matches_sort_median_bitwise() {
        let sort_median = |xs: &[f64]| -> f64 {
            let mut v = xs.to_vec();
            v.sort_by(f64::total_cmp);
            let mid = v.len() / 2;
            if v.len() % 2 == 1 {
                v[mid]
            } else {
                0.5 * (v[mid - 1] + v[mid])
            }
        };
        let cases: Vec<Vec<f64>> = vec![
            vec![0.3],
            vec![2.0, 2.0, 2.0, 2.0],
            vec![-0.0, 0.0, -0.0, 0.0],
            vec![1.5, -3.0, 7.25, 0.5, 2.0, -1.0],
            (0..257)
                .map(|k| ((k * 7919) % 263) as f64 * 0.125)
                .collect(),
        ];
        for xs in &cases {
            let mut buf = xs.clone();
            assert_eq!(
                median_inplace(&mut buf).to_bits(),
                sort_median(xs).to_bits(),
                "case {xs:?}"
            );
            assert_eq!(median(xs).to_bits(), sort_median(xs).to_bits());
        }
    }
}
