//! K-means clustering over IQ points with model selection.
//!
//! §3.3: "we can detect if collisions are present by performing k-means
//! clustering and determining the best fit in terms of number of clusters.
//! If three clusters is not a good fit, then a collision is likely to have
//! occurred." A single tag's edge differentials form 3 clusters
//! (rising/falling/constant); k colliding tags form 3^k.
//!
//! Initialization is the deterministic farthest-point ("k-means‖"-style)
//! variant of k-means++: the first centre is the point farthest from the
//! data mean and each subsequent centre is the point farthest from all
//! chosen centres. This removes the RNG from the decode path entirely, so a
//! given capture always decodes identically — a property the integration
//! tests rely on and a reasonable choice for a reference implementation.

use lf_types::Complex;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster centroids, `k` of them.
    pub centroids: Vec<Complex>,
    /// For each input point, the index of its centroid.
    pub assignments: Vec<usize>,
    /// Within-cluster sum of squared distances (the k-means objective).
    pub inertia: f64,
    /// Number of Lloyd iterations performed.
    pub iterations: usize,
}

impl KMeansResult {
    /// Number of points assigned to each cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centroids.len()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }

    /// The points belonging to cluster `c`.
    pub fn members(&self, points: &[Complex], c: usize) -> Vec<Complex> {
        points
            .iter()
            .zip(&self.assignments)
            .filter_map(|(p, &a)| (a == c).then_some(*p))
            .collect()
    }
}

/// Deterministic farthest-point initialization.
fn init_centroids(points: &[Complex], k: usize) -> Vec<Complex> {
    let mean = Complex::mean(points);
    let mut centroids = Vec::with_capacity(k);
    // First centre: farthest point from the mean — for edge-differential
    // data this lands on an extreme corner of the constellation, which is a
    // real cluster, unlike the mean itself (which may fall between
    // clusters).
    let Some(first) = points
        .iter()
        .copied()
        .max_by(|a, b| a.distance_sqr(mean).total_cmp(&b.distance_sqr(mean)))
    else {
        return centroids; // unreachable: kmeans() asserts non-empty input
    };
    centroids.push(first);
    let mut dist: Vec<f64> = points.iter().map(|p| p.distance_sqr(first)).collect();
    while centroids.len() < k {
        let Some((idx, _)) = dist.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)) else {
            break; // unreachable: dist mirrors the non-empty points slice
        };
        let c = points[idx];
        centroids.push(c);
        for (d, p) in dist.iter_mut().zip(points) {
            *d = d.min(p.distance_sqr(c));
        }
    }
    centroids
}

/// Runs Lloyd's algorithm with deterministic farthest-point initialization.
///
/// `k` is clamped to the number of points. Panics if `points` is empty or
/// `k` is zero — callers gate on having data first.
pub fn kmeans(points: &[Complex], k: usize, max_iters: usize) -> KMeansResult {
    assert!(!points.is_empty(), "kmeans needs at least one point");
    assert!(k > 0, "kmeans needs k >= 1");
    let k = k.min(points.len());
    let mut centroids = init_centroids(points, k);
    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;
    // Split SoA views for the SIMD assignment kernel. First-minimum
    // semantics and the distance spelling match the old
    // `min_by(total_cmp)` scan exactly on finite inputs, so assignments —
    // and everything downstream — are unchanged bit for bit.
    let mut pre: Vec<f64> = Vec::with_capacity(points.len());
    let mut pim: Vec<f64> = Vec::with_capacity(points.len());
    for p in points {
        pre.push(p.re);
        pim.push(p.im);
    }
    let mut cre: Vec<f64> = Vec::with_capacity(k);
    let mut cim: Vec<f64> = Vec::with_capacity(k);
    let mut nearest: Vec<u32> = Vec::new();
    let mut nearest_d: Vec<f64> = Vec::new();
    for _ in 0..max_iters {
        iterations += 1;
        // Assignment step (vector kernel over the SoA views).
        cre.clear();
        cim.clear();
        for c in &centroids {
            cre.push(c.re);
            cim.push(c.im);
        }
        crate::simd::nearest_centroid_into(&pre, &pim, &cre, &cim, &mut nearest, &mut nearest_d);
        let mut changed = false;
        for (a, &best) in assignments.iter_mut().zip(&nearest) {
            let best = best as usize;
            if *a != best {
                *a = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![Complex::ZERO; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignments) {
            sums[a] += *p;
            counts[a] += 1;
        }
        for c in 0..k {
            if counts[c] > 0 {
                centroids[c] = sums[c].scale(1.0 / counts[c] as f64);
            }
            // Empty clusters keep their old centre; with farthest-point init
            // this only happens on duplicate-heavy data and is harmless.
        }
        if !changed && iterations > 1 {
            break;
        }
    }
    let inertia = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| p.distance_sqr(centroids[a]))
        .sum();
    KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    }
}

/// Fits k-means for each candidate `k` (ascending) and returns
/// `(best_k, best_fit)` under an inertia-ratio criterion: a larger model is
/// accepted only when it shrinks the within-cluster sum of squares by more
/// than `min_improvement`×.
///
/// This is the paper's collision detector ("determining the best fit in
/// terms of number of clusters", §3.3), specialized to its constellation
/// geometry: splitting a genuinely 3-cluster stream into 9 clusters only
/// buys the generic ≈k-fold inertia reduction of over-partitioning a blob
/// (≈3×), while a true 2-tag collision forced into 3 clusters leaves
/// entire lattice cells merged, so moving to 9 clusters shrinks inertia by
/// the squared separation-to-noise ratio — orders of magnitude. A ratio
/// threshold (default 8) separates the two regimes across the whole SNR
/// range of Table 2, where an absolute (BIC-style) penalty does not: the
/// over-partitioning gain grows with the point count, so any fixed penalty
/// eventually loses to it.
pub fn select_cluster_count(
    points: &[Complex],
    candidates: &[usize],
    max_iters: usize,
    min_improvement: f64,
) -> (usize, KMeansResult) {
    let (k, fit, _) = select_cluster_count_scored(points, candidates, max_iters, min_improvement);
    (k, fit)
}

/// [`select_cluster_count`] plus the per-candidate scores: returns
/// `(best_k, best_fit, scores)` where `scores` holds `(k, inertia)` for
/// every candidate model actually fitted (in ascending-k order), so a
/// decode-provenance report can show *how close* the model selection was,
/// not just what it chose. Candidates skipped by the early-perfect-fit
/// shortcut are absent from the list.
pub fn select_cluster_count_scored(
    points: &[Complex],
    candidates: &[usize],
    max_iters: usize,
    min_improvement: f64,
) -> (usize, KMeansResult, Vec<(usize, f64)>) {
    let sel = select_cluster_count_detailed(points, candidates, max_iters, min_improvement);
    (sel.k, sel.fit, sel.scores)
}

/// The full output of [`select_cluster_count_detailed`].
#[derive(Debug, Clone)]
pub struct SelectedClusters {
    /// The chosen cluster count (clamped to the point count).
    pub k: usize,
    /// The winning fit.
    pub fit: KMeansResult,
    /// `(k, inertia)` for every candidate actually fitted, ascending k.
    pub scores: Vec<(usize, f64)>,
    /// The smallest candidate's fit, kept when the selection promoted a
    /// larger model (`None` when the smallest candidate won — `fit` *is*
    /// it then). Callers that reject the larger model downstream (e.g.
    /// the separation stage's lattice gates) reuse this instead of
    /// re-running k-means; determinism makes the two bit-identical.
    pub smallest: Option<KMeansResult>,
}

/// [`select_cluster_count_scored`] that additionally hands back the
/// smallest candidate's fit when a larger model displaced it.
pub fn select_cluster_count_detailed(
    points: &[Complex],
    candidates: &[usize],
    max_iters: usize,
    min_improvement: f64,
) -> SelectedClusters {
    assert!(!candidates.is_empty(), "need at least one candidate k");
    let _span = lf_obs::span!("dsp.kmeans.select");
    let mut sorted: Vec<usize> = candidates.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut best_k = sorted[0].min(points.len().max(1));
    let mut best = kmeans(points, sorted[0], max_iters);
    let mut scores = vec![(best_k, best.inertia)];
    let mut smallest: Option<KMeansResult> = None;
    // Total scatter of the data; a fit whose residual is a negligible
    // fraction of it is already perfect, and ratios of numerical dust
    // (e.g. 1e-28 vs 1e-32 on noise-free input) must not promote a larger
    // model.
    let scatter: f64 = points.iter().map(|p| p.norm_sqr()).sum();
    for &k in &sorted[1..] {
        if best.inertia <= 1e-9 * scatter {
            break;
        }
        let fit = kmeans(points, k, max_iters);
        scores.push((k.min(points.len()), fit.inertia));
        // A perfect (zero-inertia) smaller fit cannot be improved upon.
        let improvement = if fit.inertia > 0.0 {
            best.inertia / fit.inertia
        } else if best.inertia > 0.0 {
            f64::INFINITY
        } else {
            1.0
        };
        if improvement > min_improvement {
            best_k = k.min(points.len());
            let displaced = std::mem::replace(&mut best, fit);
            // Only the first promotion displaces the smallest candidate's
            // fit; later promotions displace intermediate models.
            if smallest.is_none() {
                smallest = Some(displaced);
            }
        }
    }
    SelectedClusters {
        k: best_k,
        fit: best,
        scores,
        smallest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-noise in [-1,1) from an integer, for building
    /// test constellations without an RNG.
    fn jitter(seed: u64) -> f64 {
        let mut z = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z ^= z >> 29;
        z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 32;
        (z as f64 / u64::MAX as f64) * 2.0 - 1.0
    }

    fn blob(center: Complex, n: usize, spread: f64, seed: u64) -> Vec<Complex> {
        (0..n)
            .map(|i| {
                center
                    + Complex::new(
                        jitter(seed + 2 * i as u64) * spread,
                        jitter(seed + 2 * i as u64 + 1) * spread,
                    )
            })
            .collect()
    }

    #[test]
    fn three_well_separated_blobs() {
        let mut pts = blob(Complex::new(0.0, 0.0), 40, 0.05, 1);
        pts.extend(blob(Complex::new(1.0, 1.0), 40, 0.05, 100));
        pts.extend(blob(Complex::new(-1.0, 1.0), 40, 0.05, 200));
        let fit = kmeans(&pts, 3, 50);
        assert_eq!(fit.centroids.len(), 3);
        let sizes = fit.cluster_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 120);
        for s in sizes {
            assert_eq!(s, 40, "each blob should be its own cluster");
        }
        // Every centroid lands near a true centre.
        for truth in [
            Complex::new(0.0, 0.0),
            Complex::new(1.0, 1.0),
            Complex::new(-1.0, 1.0),
        ] {
            assert!(
                fit.centroids.iter().any(|c| c.distance(truth) < 0.1),
                "no centroid near {truth}"
            );
        }
    }

    #[test]
    fn k_clamped_to_point_count() {
        let pts = vec![Complex::new(1.0, 0.0), Complex::new(-1.0, 0.0)];
        let fit = kmeans(&pts, 5, 10);
        assert_eq!(fit.centroids.len(), 2);
        assert!(fit.inertia < 1e-20);
    }

    #[test]
    fn identical_points_converge() {
        let pts = vec![Complex::new(0.5, 0.5); 20];
        let fit = kmeans(&pts, 3, 10);
        assert!(fit.inertia < 1e-20);
    }

    #[test]
    fn determinism() {
        let mut pts = blob(Complex::new(0.3, -0.2), 30, 0.1, 7);
        pts.extend(blob(Complex::new(-0.4, 0.6), 30, 0.1, 77));
        let a = kmeans(&pts, 2, 50);
        let b = kmeans(&pts, 2, 50);
        assert_eq!(a.assignments, b.assignments);
        for (x, y) in a.centroids.iter().zip(&b.centroids) {
            assert!(x.approx_eq(*y, 0.0));
        }
    }

    #[test]
    fn model_selection_prefers_true_k_3() {
        // 3 clusters of a non-collided stream: 0, +e, -e.
        let e = Complex::new(0.8, 0.3);
        let mut pts = blob(Complex::ZERO, 60, 0.03, 1);
        pts.extend(blob(e, 60, 0.03, 2));
        pts.extend(blob(-e, 60, 0.03, 3));
        let (k, _) = select_cluster_count(&pts, &[3, 9], 50, 8.0);
        assert_eq!(k, 3);
    }

    #[test]
    fn model_selection_prefers_true_k_9() {
        // 9 clusters of a 2-tag collision: a·e1 + b·e2, a,b ∈ {-1,0,1}.
        let e1 = Complex::new(0.9, 0.1);
        let e2 = Complex::new(-0.2, 0.7);
        let mut pts = Vec::new();
        let mut seed = 10;
        for a in [-1.0, 0.0, 1.0] {
            for b in [-1.0, 0.0, 1.0] {
                pts.extend(blob(e1.scale(a) + e2.scale(b), 25, 0.02, seed));
                seed += 1000;
            }
        }
        let (k, fit) = select_cluster_count(&pts, &[3, 9], 50, 8.0);
        assert_eq!(k, 9);
        assert_eq!(fit.centroids.len(), 9);
    }

    #[test]
    fn members_partition_points() {
        let mut pts = blob(Complex::new(1.0, 0.0), 10, 0.01, 4);
        pts.extend(blob(Complex::new(-1.0, 0.0), 15, 0.01, 5));
        let fit = kmeans(&pts, 2, 20);
        let total: usize = (0..2).map(|c| fit.members(&pts, c).len()).sum();
        assert_eq!(total, pts.len());
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_input_panics() {
        let _ = kmeans(&[], 3, 10);
    }
}
