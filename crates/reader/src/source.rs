//! IQ sample sources: where the stream comes from.
//!
//! The runtime pulls fixed-ish-size chunks from an [`IqSource`] on a
//! dedicated ingest thread. Three sources cover the reproduction's
//! needs: an in-memory capture ([`SliceSource`]), a raw IQ file
//! ([`FileSource`]), and a lazily synthesized simulation session
//! ([`ScenarioSource`]) that never materializes more than one epoch of
//! samples at a time — the shape of a real SDR front end that hands the
//! ingester one DMA buffer per call.

use crate::runtime::EpochReport;
use lf_sim::scenario::Scenario;
use lf_sim::score::{score_epoch, TagScore, TruthStream};
use lf_sim::simulate::{synthesize_epoch, synthesize_gap};
use lf_types::Complex;
use std::io::Read;
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};

/// A pull-based stream of IQ sample chunks.
///
/// `next_chunk` returning `None` ends the stream; the runtime then
/// flushes the segmenter and drains the pipeline. Sources are moved onto
/// the ingest thread, hence the `Send` bound.
pub trait IqSource: Send {
    /// The next chunk of contiguous samples, or `None` at end of stream.
    fn next_chunk(&mut self) -> Option<Vec<Complex>>;
}

/// An in-memory capture replayed in fixed-size chunks.
#[derive(Debug, Clone)]
pub struct SliceSource {
    samples: Vec<Complex>,
    chunk_len: usize,
    pos: usize,
}

impl SliceSource {
    /// Wraps a capture; `chunk_len` is clamped to ≥ 1.
    pub fn new(samples: Vec<Complex>, chunk_len: usize) -> Self {
        SliceSource {
            samples,
            chunk_len: chunk_len.max(1),
            pos: 0,
        }
    }
}

impl IqSource for SliceSource {
    fn next_chunk(&mut self) -> Option<Vec<Complex>> {
        if self.pos >= self.samples.len() {
            return None;
        }
        let end = (self.pos + self.chunk_len).min(self.samples.len());
        let chunk = self.samples[self.pos..end].to_vec();
        self.pos = end;
        Some(chunk)
    }
}

/// A raw IQ capture file: interleaved little-endian `f32` I/Q pairs (the
/// de-facto SDR interchange format, e.g. GNU Radio's `gr_complex` sink).
///
/// A read error or a trailing partial sample ends the stream — a
/// streaming reader degrades to "capture ended", it does not abort.
#[derive(Debug)]
pub struct FileSource {
    reader: std::io::BufReader<std::fs::File>,
    chunk_len: usize,
    done: bool,
}

impl FileSource {
    /// Opens a raw IQ file, emitting `chunk_len`-sample chunks.
    pub fn open(path: &Path, chunk_len: usize) -> std::io::Result<Self> {
        Ok(FileSource {
            reader: std::io::BufReader::new(std::fs::File::open(path)?),
            chunk_len: chunk_len.max(1),
            done: false,
        })
    }
}

impl IqSource for FileSource {
    fn next_chunk(&mut self) -> Option<Vec<Complex>> {
        if self.done {
            return None;
        }
        let mut bytes = vec![0u8; self.chunk_len * 8];
        let mut filled = 0usize;
        while filled < bytes.len() {
            match self.reader.read(&mut bytes[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.done = true;
                    break;
                }
            }
        }
        let n_samples = filled / 8;
        if n_samples == 0 {
            self.done = true;
            return None;
        }
        let mut chunk = Vec::with_capacity(n_samples);
        for k in 0..n_samples {
            let at = k * 8;
            let re = f32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
            let im =
                f32::from_le_bytes([bytes[at + 4], bytes[at + 5], bytes[at + 6], bytes[at + 7]]);
            chunk.push(Complex::new(f64::from(re), f64::from(im)));
        }
        Some(chunk)
    }
}

/// Ground truth accumulated by a [`ScenarioSource`] as it synthesizes,
/// shared with the consumer for scoring. Epoch `k`'s truth is available
/// by the time the runtime can possibly deliver epoch `k`'s decode (the
/// source synthesized it before the ingester could segment it).
#[derive(Debug, Clone)]
pub struct SessionTruths {
    truths: Arc<Mutex<Vec<Vec<TruthStream>>>>,
    epoch_samples: usize,
    gap_samples: usize,
}

impl SessionTruths {
    /// Ground truth for epoch `idx`, if that epoch has been synthesized.
    pub fn for_epoch(&self, idx: usize) -> Option<Vec<TruthStream>> {
        self.truths
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(idx)
            .cloned()
    }

    /// Number of epochs synthesized so far.
    pub fn epochs(&self) -> usize {
        self.truths
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Sample index at which epoch `idx` begins within the session
    /// stream (epochs and gaps strictly alternate, so the layout is
    /// arithmetic).
    pub fn epoch_begin(&self, idx: usize) -> usize {
        idx * (self.epoch_samples + self.gap_samples)
    }

    /// Scores a delivered report against its epoch's ground truth.
    ///
    /// Truth offsets are stated relative to the epoch's *true* start in
    /// the session stream, while the decoder's offsets are relative to
    /// the slice the online segmenter handed it — which may start a few
    /// samples early or late. The difference is known exactly from the
    /// report's range, so the truths are shifted into the decoder's
    /// frame before `lf_sim::score::score_epoch` runs (whose slot
    /// alignment is deliberately tight: ±8 samples).
    ///
    /// `None` when the report carries no decode (dropped or faulted
    /// epoch) or its epoch was never synthesized.
    pub fn score_report(&self, report: &EpochReport) -> Option<Vec<TagScore>> {
        let decode = report.decode()?;
        let idx = usize::try_from(report.seq).ok()?;
        let truths = self.for_epoch(idx)?;
        let shift = self.epoch_begin(idx) as f64 - report.range.start as f64;
        let shifted: Vec<TruthStream> = truths
            .into_iter()
            .map(|mut t| {
                t.offset += shift;
                t
            })
            .collect();
        Some(score_epoch(&shifted, decode))
    }
}

/// Which piece of the session the source emits next.
#[derive(Debug, Clone, Copy)]
enum NextPiece {
    Epoch(u64),
    Gap(u64),
    Done,
}

/// A sim-backed source: synthesizes a scenario's session (epochs
/// separated by carrier-off gaps, as in `lf_sim::synthesize_session`)
/// lazily, one epoch or gap at a time, and replays it in chunks.
#[derive(Debug)]
pub struct ScenarioSource {
    scenario: Scenario,
    n_epochs: u64,
    gap_samples: usize,
    chunk_len: usize,
    buffer: Vec<Complex>,
    buf_pos: usize,
    next_piece: NextPiece,
    truths: SessionTruths,
}

impl ScenarioSource {
    /// Creates the source and the truth handle its consumer scores with.
    pub fn new(
        scenario: Scenario,
        n_epochs: u64,
        gap_samples: usize,
        chunk_len: usize,
    ) -> (Self, SessionTruths) {
        let truths = SessionTruths {
            truths: Arc::new(Mutex::new(Vec::new())),
            epoch_samples: scenario.epoch_samples,
            gap_samples,
        };
        let next_piece = if n_epochs == 0 {
            NextPiece::Done
        } else {
            NextPiece::Epoch(0)
        };
        (
            ScenarioSource {
                scenario,
                n_epochs,
                gap_samples,
                chunk_len: chunk_len.max(1),
                buffer: Vec::new(),
                buf_pos: 0,
                next_piece,
                truths: truths.clone(),
            },
            truths,
        )
    }

    /// Sample index at which epoch `idx` begins within the session
    /// stream (epochs and gaps strictly alternate, so the layout is
    /// arithmetic).
    pub fn epoch_begin(&self, idx: usize) -> usize {
        idx * (self.scenario.epoch_samples + self.gap_samples)
    }

    fn refill(&mut self) -> bool {
        match self.next_piece {
            NextPiece::Done => false,
            NextPiece::Epoch(e) => {
                let (signal, truth) = synthesize_epoch(&self.scenario, e);
                self.truths
                    .truths
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(truth);
                self.buffer = signal;
                self.buf_pos = 0;
                self.next_piece = if e + 1 < self.n_epochs {
                    NextPiece::Gap(e)
                } else {
                    NextPiece::Done
                };
                true
            }
            NextPiece::Gap(g) => {
                self.buffer = synthesize_gap(&self.scenario, g, self.gap_samples);
                self.buf_pos = 0;
                self.next_piece = NextPiece::Epoch(g + 1);
                // A zero-length gap yields an empty buffer; recurse once
                // to land on the following epoch.
                if self.buffer.is_empty() {
                    return self.refill();
                }
                true
            }
        }
    }
}

impl IqSource for ScenarioSource {
    fn next_chunk(&mut self) -> Option<Vec<Complex>> {
        if self.buf_pos >= self.buffer.len() && !self.refill() {
            return None;
        }
        let end = (self.buf_pos + self.chunk_len).min(self.buffer.len());
        let chunk = self.buffer[self.buf_pos..end].to_vec();
        self.buf_pos = end;
        Some(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sim::scenario::ScenarioTag;
    use lf_sim::simulate::synthesize_session;
    use lf_types::{RatePlan, SampleRate};

    fn tiny_scenario() -> Scenario {
        let mut s = Scenario::paper_default(
            vec![ScenarioTag::sensor(10_000.0).with_payload_bits(32)],
            6_000,
        )
        .at_sample_rate(SampleRate::from_msps(1.0));
        s.rate_plan = RatePlan::from_bps(100.0, &[10_000.0]).unwrap();
        s.seed = 0x5eed_0007;
        s
    }

    fn drain(mut src: impl IqSource) -> Vec<Complex> {
        let mut all = Vec::new();
        while let Some(c) = src.next_chunk() {
            assert!(!c.is_empty(), "sources never emit empty chunks");
            all.extend(c);
        }
        all
    }

    #[test]
    fn slice_source_replays_exactly() {
        let samples: Vec<Complex> = (0..1000).map(|k| Complex::new(k as f64, -1.0)).collect();
        for chunk in [1, 3, 256, 2000] {
            let got = drain(SliceSource::new(samples.clone(), chunk));
            assert_eq!(got, samples, "chunk {chunk}");
        }
    }

    #[test]
    fn scenario_source_matches_synthesize_session() {
        let sc = tiny_scenario();
        let session = synthesize_session(&sc, 3, 500);
        let (src, truths) = ScenarioSource::new(sc, 3, 500, 1024);
        assert_eq!(src.epoch_begin(1), 6_500);
        let got = drain(src);
        assert_eq!(got, session.signal, "lazy source must replay the session");
        assert_eq!(truths.epochs(), 3);
        for e in 0..3 {
            let t = truths.for_epoch(e).unwrap();
            assert_eq!(t[0].bits, session.truths[e][0].bits, "epoch {e}");
        }
    }

    #[test]
    fn file_source_round_trips_f32_iq() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("lf_reader_iq_{}.bin", std::process::id()));
        let samples: Vec<Complex> = (0..300)
            .map(|k| Complex::new(k as f64 * 0.25, -(k as f64) * 0.5))
            .collect();
        let mut bytes = Vec::new();
        for s in &samples {
            bytes.extend_from_slice(&(s.re as f32).to_le_bytes());
            bytes.extend_from_slice(&(s.im as f32).to_le_bytes());
        }
        bytes.extend_from_slice(&[1, 2, 3]); // trailing partial sample
        std::fs::write(&path, &bytes).unwrap();
        let got = drain(FileSource::open(&path, 64).unwrap());
        std::fs::remove_file(&path).ok();
        assert_eq!(got.len(), samples.len());
        for (a, b) in got.iter().zip(&samples) {
            assert!((a.re - b.re).abs() < 1e-6 && (a.im - b.im).abs() < 1e-6);
        }
    }
}
