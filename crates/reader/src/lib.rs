//! `lf-reader`: the streaming reader runtime.
//!
//! Everything below `lf-reader` decodes one epoch at a time from a slice
//! that already exists in memory. A reader appliance doesn't get that
//! luxury: IQ samples arrive continuously from the front end, epochs have
//! to be found *online*, and decode work has to overlap with ingestion or
//! the reader falls behind the air interface. This crate is that runtime:
//!
//! * [`IqSource`] — chunked sample input ([`SliceSource`], [`FileSource`],
//!   sim-backed [`ScenarioSource`]).
//! * [`OnlineSegmenter`] — chunk-size-invariant carrier-gap epoch
//!   segmentation, mirroring `lf_core::epoch::split_epochs` thresholds.
//! * [`ReaderRuntime`] — an ingest thread feeding a bounded job queue, a
//!   `std::thread` decode pool with panic containment, and in-order
//!   report delivery; explicit [`Backpressure`] policy (lossless block
//!   vs drop-oldest with exact accounting).
//! * [`RuntimeStats`] — live counters, queue depths, and per-stage decode
//!   latency percentiles, pollable while the pipeline serves.
//!
//! The parallel runtime is deterministic: its ordered report stream is
//! byte-identical to [`sequential_decode`] of the same capture.
//!
//! ```no_run
//! use lf_reader::{ReaderRuntime, ScenarioSource};
//! use lf_sim::scenario::{Scenario, ScenarioTag};
//!
//! let scenario = Scenario::paper_default(vec![ScenarioTag::sensor(10_000.0)], 20_000);
//! let decoder_cfg = scenario.decoder_config();
//! let (source, _truths) = ScenarioSource::new(scenario, 8, 1_000, 4_096);
//! let mut runtime = ReaderRuntime::spawn_decoder(source, decoder_cfg);
//! while let Some(report) = runtime.recv() {
//!     if let Some(decode) = report.decode() {
//!         println!("epoch {}: {} streams", report.seq, decode.streams.len());
//!     }
//! }
//! ```

pub mod queue;
pub mod runtime;
pub mod segment;
pub mod source;
pub mod stats;

pub use queue::BoundedQueue;
pub use runtime::{
    sequential_decode, Backpressure, DiagSinks, EpochDecoder, EpochReport, EpochResult,
    ReaderRuntime, RuntimeConfig,
};
pub use segment::{OnlineSegmenter, SegmentedEpoch, SegmenterConfig, ThresholdPolicy};
pub use source::{FileSource, IqSource, ScenarioSource, SessionTruths, SliceSource};
pub use stats::{LatencySummary, RuntimeStats, StageLatencies};
