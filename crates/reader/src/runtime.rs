//! The streaming reader runtime: ingest → segment → decode pool → reorder.
//!
//! ```text
//!             ingest thread                N worker threads
//! IqSource ──► OnlineSegmenter ──► job queue ──► decode_epoch ──► result
//!   chunks        epochs           (bounded)      (contained)      queue ──► recv()
//!                                                                (bounded)   in seq
//!                                                                            order
//! ```
//!
//! Design contract:
//!
//! * **Bounded everywhere.** Both queues are [`BoundedQueue`]s. Under the
//!   [`Backpressure::Block`] policy nothing is ever lost — a slow consumer
//!   stalls the workers, which stalls ingestion. Under
//!   [`Backpressure::DropOldest`] the ingester sheds the *oldest*
//!   undecoded epoch instead of blocking (freshest data wins on a live
//!   air interface) and accounts for every shed epoch: a `Dropped`
//!   report still flows to the consumer, so `epochs_in` always equals
//!   delivered reports at shutdown.
//! * **Deterministic.** Segmentation is chunk-size invariant, workers
//!   never influence each other's decodes, and reports are reassembled
//!   in epoch order — an N-worker run is byte-identical to
//!   [`sequential_decode`] of the same capture.
//! * **Fault containment.** A panic inside one epoch's decode is caught;
//!   that epoch is reported as [`EpochResult::Faulted`] and the pool
//!   keeps serving (a poisoned capture must not take down the reader).
//! * **Graceful shutdown.** [`ReaderRuntime::shutdown`] stops ingestion,
//!   lets the workers drain what is queued, and delivers it; dropping
//!   the runtime does the same before joining its threads.

use crate::queue::BoundedQueue;
use crate::segment::{OnlineSegmenter, SegmentedEpoch, SegmenterConfig};
use crate::source::IqSource;
use crate::stats::{nanos_of, RuntimeStats, StatsShared};
use lf_core::config::DecoderConfig;
use lf_core::pipeline::{Decoder, EpochDecode, StageTimings};
use lf_core::DecodeScratch;
use lf_obs::{EpochOutcome, FlightRecord, FlightRecorder, ObsContext, TagLedger};
use lf_types::Complex;
use std::collections::BTreeMap;
use std::ops::Range;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// An epoch decoder the worker pool can share. Implemented by
/// `lf_core::Decoder`; tests and ablations can substitute their own.
///
/// Each worker thread owns one [`DecodeScratch`] for its whole lifetime
/// and passes it to every decode, so a decoder built on
/// [`lf_core::PipelineGraph`](lf_core::PipelineGraph) allocates its epoch
/// buffers once per worker, not once per epoch. Decoders that don't reuse
/// buffers simply ignore the argument.
pub trait EpochDecoder: Send + Sync + 'static {
    /// Decodes one segmented epoch, reporting per-stage timings.
    fn decode_epoch(
        &self,
        samples: &[Complex],
        scratch: &mut DecodeScratch,
    ) -> (EpochDecode, StageTimings);
}

impl EpochDecoder for Decoder {
    fn decode_epoch(
        &self,
        samples: &[Complex],
        scratch: &mut DecodeScratch,
    ) -> (EpochDecode, StageTimings) {
        self.decode_timed_with(samples, scratch)
    }
}

/// What to do when the decode pool cannot keep up with the air interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Never lose an epoch: ingestion blocks until the pool has room.
    /// Right for offline captures and file replay.
    Block,
    /// Never block ingestion: shed the oldest queued (undecoded) epoch
    /// and deliver a `Dropped` report in its place. Right for a live
    /// front end whose hardware buffer would otherwise overflow
    /// arbitrarily.
    DropOldest,
}

/// Worker-pool and queue parameters.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Decode worker threads (clamped to ≥ 1).
    pub workers: usize,
    /// Job (segmented-epoch) queue capacity.
    pub job_queue: usize,
    /// Result (report) queue capacity.
    pub result_queue: usize,
    /// Backpressure policy at the job queue.
    pub backpressure: Backpressure,
    /// Online segmentation parameters.
    pub segmenter: SegmenterConfig,
    /// Diagnosis sinks the pipeline threads feed as they work (defaults
    /// to none — zero cost unless wired).
    pub diag: DiagSinks,
}

impl RuntimeConfig {
    /// Defaults derived from a decoder configuration: one worker per
    /// available core, queues of twice the pool depth, lossless
    /// backpressure, no diagnosis sinks.
    pub fn for_decoder(cfg: &DecoderConfig) -> Self {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        RuntimeConfig {
            workers,
            job_queue: 2 * workers,
            result_queue: 2 * workers,
            backpressure: Backpressure::Block,
            segmenter: SegmenterConfig::from_decoder(cfg),
            diag: DiagSinks::default(),
        }
    }
}

/// Diagnosis sinks the runtime feeds from inside the pipeline threads:
/// a shared [`TagLedger`] receiving every epoch outcome and per-stream
/// stage verdict, and a [`FlightRecorder`] receiving one bounded record
/// per epoch. Both are optional and default to absent; the runtime's
/// behaviour is identical either way (the sinks observe, they never
/// steer).
///
/// Frame *deliveries* are not recorded here — the runtime reports decoded
/// streams, not CRC-verified frames. The frame-extraction layer
/// (`lf-fleet`, or any consumer of [`EpochReport`]s) calls
/// [`TagLedger::deliver`] with the same epoch ordinals (`seq`), closing
/// the expected-vs-delivered loop.
#[derive(Debug, Clone, Default)]
pub struct DiagSinks {
    /// Delivery ledger; epoch outcomes and stream verdicts are observed
    /// under [`DiagSinks::reader`].
    pub ledger: Option<Arc<TagLedger>>,
    /// Flight recorder; one record per epoch (decoded, dropped, or
    /// faulted), plus a black-box trigger on every contained worker panic.
    pub flight: Option<Arc<FlightRecorder>>,
    /// This runtime's reader index in the ledger rows and flight records
    /// (0 for a standalone reader; `lf-fleet` assigns distinct indices).
    pub reader: usize,
    /// Also trigger a black-box dump when a decoded epoch carries a
    /// provenance anomaly (off by default: anomalies are common under
    /// deliberate collisions and the ring still retains them).
    pub trigger_on_anomaly: bool,
}

impl DiagSinks {
    /// Ledger + flight recorder for reader index `reader`, anomaly
    /// trigger off.
    pub fn new(ledger: Arc<TagLedger>, flight: Arc<FlightRecorder>, reader: usize) -> Self {
        DiagSinks {
            ledger: Some(ledger),
            flight: Some(flight),
            reader,
            trigger_on_anomaly: false,
        }
    }

    /// True when no sink is wired (the observe calls are no-ops).
    pub fn is_empty(&self) -> bool {
        self.ledger.is_none() && self.flight.is_none()
    }

    fn observe_decoded(
        &self,
        seq: u64,
        decode: &EpochDecode,
        timings: &StageTimings,
        jobs_depth: usize,
        results_depth: usize,
    ) {
        if let Some(ledger) = &self.ledger {
            ledger.observe_epoch(self.reader, seq, EpochOutcome::Decoded);
            // Streams and their provenance records are index-aligned.
            for (s, p) in decode.streams.iter().zip(&decode.provenance.streams) {
                ledger.observe_stream(self.reader, seq, s.rate_bps.to_bits(), p.failing_stage());
            }
        }
        if let Some(flight) = &self.flight {
            let anomaly = decode.provenance.failing_stage();
            let mut stage_ns: Vec<(&'static str, u64)> = timings
                .iter()
                .map(|(name, d)| (name, nanos_of(d)))
                .collect();
            stage_ns.push(("total", nanos_of(timings.total)));
            flight.record(FlightRecord {
                reader: self.reader,
                seq,
                outcome: "decoded",
                failing_stage: anomaly,
                streams: decode.streams.len(),
                edges: decode.n_edges,
                stage_ns,
                jobs_depth,
                results_depth,
                detail: String::new(),
            });
            if self.trigger_on_anomaly {
                if let Some(stage) = anomaly {
                    let _ = flight.trigger(&format!("anomalous epoch {seq}: {stage}"));
                }
            }
        }
    }

    fn observe_faulted(&self, seq: u64, message: &str, jobs_depth: usize, results_depth: usize) {
        if let Some(ledger) = &self.ledger {
            ledger.observe_epoch(self.reader, seq, EpochOutcome::Faulted);
        }
        if let Some(flight) = &self.flight {
            flight.record(FlightRecord {
                reader: self.reader,
                seq,
                outcome: "faulted",
                failing_stage: None,
                streams: 0,
                edges: 0,
                stage_ns: Vec::new(),
                jobs_depth,
                results_depth,
                detail: message.to_owned(),
            });
            // A contained panic is always black-box-worthy.
            let _ = flight.trigger(&format!("worker-panic: epoch {seq}"));
        }
    }

    fn observe_dropped(&self, seq: u64, jobs_depth: usize, results_depth: usize) {
        if let Some(ledger) = &self.ledger {
            ledger.observe_epoch(self.reader, seq, EpochOutcome::Dropped);
        }
        if let Some(flight) = &self.flight {
            flight.record(FlightRecord {
                reader: self.reader,
                seq,
                outcome: "dropped",
                failing_stage: None,
                streams: 0,
                edges: 0,
                stage_ns: Vec::new(),
                jobs_depth,
                results_depth,
                detail: String::new(),
            });
        }
    }
}

/// How one epoch fared.
#[derive(Debug, Clone)]
pub enum EpochResult {
    /// The epoch decoded normally.
    Decoded {
        /// The decode.
        decode: EpochDecode,
        /// Per-stage wall-clock cost of this epoch's decode.
        timings: StageTimings,
    },
    /// The epoch was shed by the drop-oldest backpressure policy before
    /// a worker saw it.
    Dropped,
    /// The decode panicked; the panic was contained and the pool kept
    /// serving.
    Faulted {
        /// The panic payload, stringified.
        message: String,
    },
}

/// One epoch's report, delivered in epoch (stream) order.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Epoch sequence number (0-based, in stream order).
    pub seq: u64,
    /// The epoch's sample range within the whole stream.
    pub range: Range<usize>,
    /// True when the segmenter force-closed this epoch at its size bound.
    pub forced_split: bool,
    /// The outcome.
    pub result: EpochResult,
}

impl EpochReport {
    /// The decode, if this epoch produced one.
    pub fn decode(&self) -> Option<&EpochDecode> {
        match &self.result {
            EpochResult::Decoded { decode, .. } => Some(decode),
            EpochResult::Dropped | EpochResult::Faulted { .. } => None,
        }
    }
}

/// A segmented epoch on its way to a worker.
#[derive(Debug)]
struct Job {
    seq: u64,
    range: Range<usize>,
    forced_split: bool,
    samples: Vec<Complex>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs one job through the decoder with panic containment. The worker's
/// scratch buffers carry no cross-epoch state, so reusing them after a
/// contained panic is safe (every stage clears or rebuilds its buffer
/// before reading it).
fn decode_contained(
    decoder: &dyn EpochDecoder,
    job: &Job,
    scratch: &mut DecodeScratch,
) -> EpochResult {
    match std::panic::catch_unwind(AssertUnwindSafe(|| {
        decoder.decode_epoch(&job.samples, scratch)
    })) {
        Ok((decode, timings)) => EpochResult::Decoded { decode, timings },
        Err(payload) => EpochResult::Faulted {
            message: panic_message(payload),
        },
    }
}

/// The streaming reader runtime. See the module docs for the contract.
#[derive(Debug)]
pub struct ReaderRuntime {
    jobs: Arc<BoundedQueue<Job>>,
    results: Arc<BoundedQueue<EpochReport>>,
    stats: Arc<StatsShared>,
    obs: ObsContext,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    /// Reports that arrived ahead of their turn, keyed by seq.
    reorder: BTreeMap<u64, EpochReport>,
    next_seq: u64,
}

impl ReaderRuntime {
    /// Starts the runtime: one ingest thread pulling from `source`, and
    /// `cfg.workers` decode workers sharing `decoder`.
    pub fn spawn<S: IqSource + 'static>(
        source: S,
        decoder: Arc<dyn EpochDecoder>,
        cfg: &RuntimeConfig,
    ) -> Self {
        ReaderRuntime::spawn_with_obs(source, decoder, cfg, ObsContext::disabled())
    }

    /// [`ReaderRuntime::spawn`] with an observability context. Every
    /// pipeline thread installs `obs` thread-locally, so `reader.*`
    /// counters, per-stage latency histograms, spans, and events from all
    /// workers aggregate into the one shared registry without contention
    /// (counters are sharded). Pass [`ObsContext::disabled`] (what
    /// [`ReaderRuntime::spawn`] does) to make every recording a no-op
    /// while keeping [`ReaderRuntime::stats`] fully functional.
    pub fn spawn_with_obs<S: IqSource + 'static>(
        source: S,
        decoder: Arc<dyn EpochDecoder>,
        cfg: &RuntimeConfig,
        obs: ObsContext,
    ) -> Self {
        let jobs = Arc::new(BoundedQueue::new(cfg.job_queue));
        let results = Arc::new(BoundedQueue::new(cfg.result_queue));
        let stats = Arc::new(StatsShared::new(&obs));
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();
        // A reader is part of the conservation accounting from the moment
        // it spawns, even if it dies before observing a single epoch.
        if let Some(ledger) = &cfg.diag.ledger {
            ledger.register_reader(cfg.diag.reader);
        }

        // --- ingest thread ---
        {
            let jobs = Arc::clone(&jobs);
            let results = Arc::clone(&results);
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            let segmenter = OnlineSegmenter::new(cfg.segmenter);
            let policy = cfg.backpressure;
            let diag = cfg.diag.clone();
            let obs = obs.clone();
            let mut source = source;
            threads.push(std::thread::spawn(move || {
                let _obs_guard = obs.install();
                ingest(
                    &mut source,
                    segmenter,
                    policy,
                    &jobs,
                    &results,
                    &stats,
                    &diag,
                    &stop,
                );
            }));
        }

        // --- worker pool ---
        let active = Arc::new(AtomicUsize::new(cfg.workers.max(1)));
        for _ in 0..cfg.workers.max(1) {
            let jobs = Arc::clone(&jobs);
            let results = Arc::clone(&results);
            let stats = Arc::clone(&stats);
            let active = Arc::clone(&active);
            let decoder = Arc::clone(&decoder);
            let diag = cfg.diag.clone();
            let obs = obs.clone();
            threads.push(std::thread::spawn(move || {
                let _obs_guard = obs.install();
                // One scratch per worker, reused across every epoch this
                // worker decodes (zero steady-state decode allocation).
                let mut scratch = DecodeScratch::default();
                while let Some(job) = jobs.pop() {
                    let result = decode_contained(&*decoder, &job, &mut scratch);
                    match &result {
                        EpochResult::Decoded { decode, timings } => {
                            // Exemplar: a latency outlier links back to the
                            // epoch (and the rate class it was carrying)
                            // that produced it.
                            let class = decode.streams.first().map_or(0, |s| s.rate_bps.to_bits());
                            stats.record_latency(timings, (job.seq, class));
                            diag.observe_decoded(
                                job.seq,
                                decode,
                                timings,
                                jobs.len(),
                                results.len(),
                            );
                        }
                        EpochResult::Faulted { message } => {
                            stats.faults.inc();
                            diag.observe_faulted(job.seq, message, jobs.len(), results.len());
                        }
                        EpochResult::Dropped => {}
                    }
                    let report = EpochReport {
                        seq: job.seq,
                        range: job.range,
                        forced_split: job.forced_split,
                        result,
                    };
                    if results.push_block(report).is_err() {
                        break;
                    }
                }
                // The last worker out closes the result queue: the job
                // queue is already closed and drained by then, and the
                // ingester (which force-pushes drop tombstones) only
                // runs while the job queue is open.
                // ordering: AcqRel — the classic last-one-out latch. The
                // Release half makes every earlier `push_block` of this
                // worker visible before the count drops; the Acquire half
                // makes the *other* workers' pushes visible to whichever
                // worker observes 1 and closes the queue, so no report
                // can be published after the close it justified.
                if active.fetch_sub(1, Ordering::AcqRel) == 1 {
                    results.close();
                }
            }));
        }

        ReaderRuntime {
            jobs,
            results,
            stats,
            obs,
            stop,
            threads,
            reorder: BTreeMap::new(),
            next_seq: 0,
        }
    }

    /// Convenience: spawn with the standard pipeline decoder and defaults
    /// derived from its configuration.
    pub fn spawn_decoder<S: IqSource + 'static>(source: S, decoder_cfg: DecoderConfig) -> Self {
        let cfg = RuntimeConfig::for_decoder(&decoder_cfg);
        ReaderRuntime::spawn(source, Arc::new(Decoder::new(decoder_cfg)), &cfg)
    }

    /// [`ReaderRuntime::spawn_decoder`] with an observability context:
    /// the pipeline decoder itself is built over `obs`, so decode spans
    /// (`pipeline.*`, `dsp.*`) and metrics land in the same registry as
    /// the `reader.*` runtime counters.
    pub fn spawn_decoder_with_obs<S: IqSource + 'static>(
        source: S,
        decoder_cfg: DecoderConfig,
        obs: ObsContext,
    ) -> Self {
        let cfg = RuntimeConfig::for_decoder(&decoder_cfg);
        let decoder = Arc::new(Decoder::with_obs(decoder_cfg, obs.clone()));
        ReaderRuntime::spawn_with_obs(source, decoder, &cfg, obs)
    }

    /// The observability context this runtime records into. Disabled
    /// (all recordings no-ops) unless the runtime was spawned through one
    /// of the `*_with_obs` constructors.
    pub fn obs(&self) -> &ObsContext {
        &self.obs
    }

    /// The next epoch report, in epoch order; blocks while the pipeline
    /// is working. `None` means the stream ended (or the runtime was shut
    /// down) and every report has been delivered.
    pub fn recv(&mut self) -> Option<EpochReport> {
        loop {
            if let Some(report) = self.reorder.remove(&self.next_seq) {
                self.next_seq += 1;
                self.stats.epochs_out.inc();
                return Some(report);
            }
            if let Some(report) = self.results.pop() {
                self.reorder.insert(report.seq, report);
                continue;
            }
            // Result queue closed and drained. Leftovers in the reorder
            // buffer can only exist after a forced shutdown cut seq gaps
            // open; deliver them in order regardless.
            let (&k, _) = self.reorder.iter().next()?;
            self.next_seq = k;
        }
    }

    /// Non-blocking [`ReaderRuntime::recv`].
    ///
    /// Ordering contract: `try_recv` and `recv` drain the *same* ordered
    /// report sequence — interleaving them in any pattern yields exactly
    /// the reports `recv` alone would have yielded, in the same order
    /// (epoch order, every seq exactly once up to a shutdown cut). The
    /// only difference is blocking behavior: where `recv` parks until the
    /// pipeline produces the next in-order report, `try_recv` returns
    /// `None`, meaning nothing is deliverable *right now* — not end of
    /// stream. Poll [`ReaderRuntime::is_finished`] to tell the two
    /// apart; once it reports true, `try_recv` returns `None` forever.
    /// This is what lets one fleet coordinator poll N runtimes without
    /// dedicating a blocked thread to each.
    pub fn try_recv(&mut self) -> Option<EpochReport> {
        loop {
            if let Some(report) = self.reorder.remove(&self.next_seq) {
                self.next_seq += 1;
                self.stats.epochs_out.inc();
                return Some(report);
            }
            match self.results.try_pop() {
                Some(report) => {
                    self.reorder.insert(report.seq, report);
                }
                None => {
                    // Nothing queued. If the stream has ended (result
                    // queue closed and drained — a stable condition),
                    // reorder-buffer leftovers can only exist because a
                    // forced shutdown cut seq gaps open; skip to the
                    // next present seq so they drain here exactly as
                    // they do in `recv`.
                    if self.results.is_closed_and_empty() {
                        if let Some((&k, _)) = self.reorder.iter().next() {
                            debug_assert!(k > self.next_seq);
                            self.next_seq = k;
                            continue;
                        }
                    }
                    return None;
                }
            }
        }
    }

    /// True once the stream has ended and every report has been
    /// delivered: from this point `recv` returns `None` immediately and
    /// [`ReaderRuntime::try_recv`]'s `None` means end of stream rather
    /// than "try again". Stable — once true, true forever.
    pub fn is_finished(&self) -> bool {
        self.results.is_closed_and_empty() && self.reorder.is_empty()
    }

    /// A live statistics snapshot; callable at any time from the
    /// consuming thread while the pipeline keeps serving.
    pub fn stats(&self) -> RuntimeStats {
        self.stats.snapshot(self.jobs.len(), self.results.len())
    }

    /// Graceful shutdown: stop ingesting, decode and deliver everything
    /// already queued. `recv` drains the remainder and then reports end
    /// of stream.
    pub fn shutdown(&self) {
        // ordering: Relaxed — a standalone stop flag polled by the
        // ingester; no data is published under it (the queue close below
        // carries its own mutex synchronization), and a one-iteration
        // delay in observing it is harmless.
        self.stop.store(true, Ordering::Relaxed);
        self.jobs.close();
    }

    /// Drains any undelivered reports, joins all pipeline threads, and
    /// returns the final statistics.
    pub fn join(mut self) -> RuntimeStats {
        while self.recv().is_some() {}
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.stats.snapshot(self.jobs.len(), self.results.len())
    }
}

impl Drop for ReaderRuntime {
    fn drop(&mut self) {
        self.shutdown();
        // Unblock any worker stuck pushing a result, then join.
        while self.recv().is_some() {}
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// The ingest loop: pull chunks, segment, enqueue jobs under the policy.
#[allow(clippy::too_many_arguments)] // the worker wiring is one call site; a struct would just move the list
fn ingest(
    source: &mut dyn IqSource,
    mut segmenter: OnlineSegmenter,
    policy: Backpressure,
    jobs: &BoundedQueue<Job>,
    results: &BoundedQueue<EpochReport>,
    stats: &StatsShared,
    diag: &DiagSinks,
    stop: &AtomicBool,
) {
    let mut segmented: Vec<SegmentedEpoch> = Vec::new();
    let mut seq = 0u64;
    loop {
        // ordering: Relaxed — poll of the standalone stop flag; see the
        // justification at the store in `shutdown`.
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let Some(chunk) = source.next_chunk() else {
            segmenter.finish(&mut segmented);
            enqueue_all(&mut segmented, &mut seq, policy, jobs, results, stats, diag);
            break;
        };
        stats.chunks_in.inc();
        stats.samples_in.add(chunk.len() as u64);
        segmenter.push_chunk(&chunk, &mut segmented);
        if !enqueue_all(&mut segmented, &mut seq, policy, jobs, results, stats, diag) {
            break;
        }
    }
    jobs.close();
}

/// Enqueues every segmented epoch; false means the pipeline is closing.
fn enqueue_all(
    segmented: &mut Vec<SegmentedEpoch>,
    seq: &mut u64,
    policy: Backpressure,
    jobs: &BoundedQueue<Job>,
    results: &BoundedQueue<EpochReport>,
    stats: &StatsShared,
    diag: &DiagSinks,
) -> bool {
    for epoch in segmented.drain(..) {
        stats.epochs_in.inc();
        if epoch.forced_split {
            stats.forced_splits.inc();
        }
        let job = Job {
            seq: *seq,
            range: epoch.range,
            forced_split: epoch.forced_split,
            samples: epoch.samples,
        };
        *seq += 1;
        match policy {
            Backpressure::Block => {
                if jobs.push_block(job).is_err() {
                    return false;
                }
            }
            Backpressure::DropOldest => match jobs.push_drop_oldest(job) {
                Err(_) => return false,
                Ok(Some(evicted)) => {
                    stats.epochs_dropped.inc();
                    diag.observe_dropped(evicted.seq, jobs.len(), results.len());
                    // Constant-size tombstone: the consumer must still
                    // see every seq exactly once for exact accounting
                    // (and so reordering never stalls on a hole).
                    let _ = results.push_forced(EpochReport {
                        seq: evicted.seq,
                        range: evicted.range,
                        forced_split: evicted.forced_split,
                        result: EpochResult::Dropped,
                    });
                }
                Ok(None) => {}
            },
        }
    }
    true
}

/// The single-threaded reference path: same segmentation, same decoder,
/// same containment, no pool — the determinism baseline the parallel
/// runtime is tested as byte-identical to.
pub fn sequential_decode<S: IqSource>(
    mut source: S,
    decoder: &dyn EpochDecoder,
    segmenter_cfg: SegmenterConfig,
) -> Vec<EpochReport> {
    let mut segmenter = OnlineSegmenter::new(segmenter_cfg);
    let mut segmented: Vec<SegmentedEpoch> = Vec::new();
    let mut reports = Vec::new();
    let mut seq = 0u64;
    let mut scratch = DecodeScratch::default();
    let mut decode_pending = |segmented: &mut Vec<SegmentedEpoch>,
                              reports: &mut Vec<EpochReport>| {
        for epoch in segmented.drain(..) {
            let job = Job {
                seq,
                range: epoch.range,
                forced_split: epoch.forced_split,
                samples: epoch.samples,
            };
            seq += 1;
            let result = decode_contained(decoder, &job, &mut scratch);
            reports.push(EpochReport {
                seq: job.seq,
                range: job.range,
                forced_split: job.forced_split,
                result,
            });
        }
    };
    while let Some(chunk) = source.next_chunk() {
        segmenter.push_chunk(&chunk, &mut segmented);
        decode_pending(&mut segmented, &mut reports);
    }
    segmenter.finish(&mut segmented);
    decode_pending(&mut segmented, &mut reports);
    reports
}
