//! Online epoch segmentation: finding carrier-off gaps in a sample stream.
//!
//! The offline segmenter (`lf_core::epoch::split_epochs`) thresholds
//! smoothed power at half the *whole capture's* median — a luxury a
//! streaming ingester does not have. This segmenter makes the same
//! decision causally: power is smoothed over a trailing window, the
//! threshold comes from a short calibration prefix (or is pinned by the
//! caller), and the same `min_gap` / `min_epoch` glitch rejection as the
//! offline splitter runs as an incremental state machine.
//!
//! Segmentation is **chunk-size invariant**: the state machine advances
//! one sample at a time, so feeding the same capture in 1-sample or
//! 64k-sample chunks produces byte-identical epochs. That invariance is
//! what lets the parallel runtime promise results identical to a
//! sequential decode of the same capture.
//!
//! Memory is bounded: the only unbounded-looking buffer is the open
//! epoch itself, and [`SegmenterConfig::max_epoch`] force-closes an epoch
//! that exceeds it (a carrier that never drops — e.g. a miscalibrated
//! threshold over an all-noise capture — must not buffer forever).

use lf_core::config::DecoderConfig;
use lf_types::Complex;
use std::collections::VecDeque;
use std::ops::Range;

/// How the carrier-power threshold is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdPolicy {
    /// Use this power threshold directly (for calibrated deployments).
    Fixed(f64),
    /// Calibrate from the stream's first `window` samples: half the
    /// median of their smoothed power, mirroring the offline splitter.
    /// Assumes the stream opens with the carrier up — true for a reader
    /// appliance, which powers its carrier before any tag can talk.
    Calibrate {
        /// Number of leading samples used for calibration.
        window: usize,
    },
}

/// Online segmenter parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmenterConfig {
    /// Trailing power-smoothing window in samples (≥ 1).
    pub smooth: usize,
    /// A below-threshold run must reach this length to count as a gap.
    pub min_gap: usize,
    /// A carrier-on segment must reach this length to count as an epoch.
    pub min_epoch: usize,
    /// Force-close an epoch at this many samples (bounds buffering).
    pub max_epoch: usize,
    /// Threshold selection.
    pub threshold: ThresholdPolicy,
}

impl SegmenterConfig {
    /// Derives segmentation scales from a decoder configuration:
    /// smoothing over a few edge widths (as
    /// `lf_core::epoch::decode_session` does) and a gap scale from the
    /// rate plan. A below-threshold run only counts as a carrier gap if
    /// no tag could have produced it by modulating: several concurrent
    /// strong tags can destructively combine with the carrier and hold
    /// the power under the threshold for about one bit, so the gap scale
    /// is two bit periods of the plan's *slowest* rate. The reader
    /// controls the real carrier-off gap between epochs and must make it
    /// longer than `min_gap` (plus the smoothing window) for the
    /// segmenter to see it.
    pub fn from_decoder(cfg: &DecoderConfig) -> Self {
        let smooth = (4.0 * cfg.edge_width).round() as usize;
        let slowest_period = cfg.period_samples(cfg.rate_plan.min_bps());
        let min_gap = (2.0 * slowest_period).max(16.0 * cfg.edge_width).round() as usize;
        let min_epoch = 32 * cfg.detect_window;
        SegmenterConfig {
            smooth: smooth.max(1),
            min_gap: min_gap.max(1),
            min_epoch,
            // ~1/3 s of the paper's 25 Msps capture; far above any epoch
            // the experiments use, small enough to bound worker memory.
            max_epoch: 1 << 23,
            threshold: ThresholdPolicy::Calibrate {
                window: min_epoch.max(8 * min_gap),
            },
        }
    }
}

/// One segmented epoch: its position in the stream and its samples.
#[derive(Debug, Clone)]
pub struct SegmentedEpoch {
    /// Sample range of the epoch within the whole stream.
    pub range: Range<usize>,
    /// The epoch's IQ samples (`range.len()` of them).
    pub samples: Vec<Complex>,
    /// True when the epoch was closed by the `max_epoch` bound rather
    /// than a detected carrier gap.
    pub forced_split: bool,
}

/// The incremental carrier-gap state machine.
#[derive(Debug)]
pub struct OnlineSegmenter {
    cfg: SegmenterConfig,
    /// Calibrated (or fixed) power threshold; `None` while calibrating.
    threshold: Option<f64>,
    /// `(sample, smoothed_power)` pairs buffered while calibrating.
    calib: Vec<(Complex, f64)>,
    /// Ring of the last `smooth` sample powers and their running sum.
    ring: VecDeque<f64>,
    ring_sum: f64,
    /// Recent samples kept while outside an epoch, so an epoch open can
    /// back-date its start by half the smoothing window (approximating
    /// the offline splitter's centred smoothing).
    history: VecDeque<Complex>,
    /// Global index of the next sample to be processed.
    cursor: usize,
    /// Global start index of the open epoch, if any.
    start: Option<usize>,
    /// Samples of the open epoch.
    pending: Vec<Complex>,
    /// Current run of below-threshold samples inside the open epoch.
    below_run: usize,
}

impl OnlineSegmenter {
    /// Creates a segmenter.
    pub fn new(cfg: SegmenterConfig) -> Self {
        let threshold = match cfg.threshold {
            ThresholdPolicy::Fixed(t) => Some(t),
            ThresholdPolicy::Calibrate { .. } => None,
        };
        OnlineSegmenter {
            cfg,
            threshold,
            calib: Vec::new(),
            ring: VecDeque::new(),
            ring_sum: 0.0,
            history: VecDeque::new(),
            cursor: 0,
            start: None,
            pending: Vec::new(),
            below_run: 0,
        }
    }

    /// The active threshold, once known.
    pub fn threshold(&self) -> Option<f64> {
        self.threshold
    }

    /// Feeds one chunk of samples, appending any completed epochs to
    /// `out` in stream order.
    pub fn push_chunk(&mut self, chunk: &[Complex], out: &mut Vec<SegmentedEpoch>) {
        for &s in chunk {
            self.push_sample(s, out);
        }
    }

    /// Flushes the stream end: an open epoch is closed as-is (the gap
    /// that would normally terminate it never arrived), mirroring the
    /// offline splitter's tail handling. The segmenter is reusable
    /// afterwards (threshold calibration is retained).
    pub fn finish(&mut self, out: &mut Vec<SegmentedEpoch>) {
        // A stream shorter than the calibration window: calibrate from
        // whatever arrived, then replay.
        if self.threshold.is_none() && !self.calib.is_empty() {
            self.complete_calibration(out);
        }
        if let Some(start) = self.start.take() {
            let mut pending = std::mem::take(&mut self.pending);
            if let Some(threshold) = self.threshold {
                trim_trailing_gap(&mut pending, threshold, self.cfg.smooth);
            }
            if pending.len() >= self.cfg.min_epoch {
                out.push(SegmentedEpoch {
                    range: start..start + pending.len(),
                    samples: pending,
                    forced_split: false,
                });
            }
        }
        self.below_run = 0;
    }

    fn push_sample(&mut self, s: Complex, out: &mut Vec<SegmentedEpoch>) {
        let power = s.norm_sqr();
        self.ring_sum += power;
        self.ring.push_back(power);
        if self.ring.len() > self.cfg.smooth {
            if let Some(old) = self.ring.pop_front() {
                self.ring_sum -= old;
            }
        }
        let smoothed = self.ring_sum / self.ring.len() as f64;

        if self.threshold.is_none() {
            self.calib.push((s, smoothed));
            let window = match self.cfg.threshold {
                ThresholdPolicy::Calibrate { window } => window.max(1),
                // Unreachable in practice (threshold is set at
                // construction for Fixed), kept total for safety.
                ThresholdPolicy::Fixed(_) => 1,
            };
            if self.calib.len() >= window {
                self.complete_calibration(out);
            }
            return;
        }
        self.step(s, smoothed, out);
    }

    /// Sets the threshold from the calibration buffer and replays the
    /// buffered samples through the state machine.
    fn complete_calibration(&mut self, out: &mut Vec<SegmentedEpoch>) {
        let smoothed: Vec<f64> = self.calib.iter().map(|&(_, p)| p).collect();
        self.threshold = Some(0.5 * median(&smoothed));
        let buffered = std::mem::take(&mut self.calib);
        for (s, p) in buffered {
            self.step(s, p, out);
        }
    }

    fn step(&mut self, s: Complex, smoothed: f64, out: &mut Vec<SegmentedEpoch>) {
        let t = self.cursor;
        self.cursor += 1;
        // Total over NaN: a non-finite power (poisoned sample) reads as
        // "carrier off" so it can never hold an epoch open forever.
        let threshold = self.threshold.unwrap_or(f64::INFINITY);
        let above = smoothed.is_finite() && smoothed >= threshold;

        if above {
            if self.start.is_none() {
                // Back-date the start: the trailing average detects the
                // carrier up to a smoothing window late, so the buffered
                // history holds the first carrier-on samples. Prepend
                // only the *adjacent above-threshold run* — reaching
                // further would pull carrier-off samples into the epoch,
                // and the giant power step at that boundary reads as a
                // spurious signal edge downstream.
                let prepended = self
                    .history
                    .iter()
                    .rev()
                    .take_while(|s| s.norm_sqr() >= threshold)
                    .count();
                let skip = self.history.len() - prepended;
                self.pending = self.history.drain(..).skip(skip).collect();
                self.start = Some(t - prepended);
            }
            self.pending.push(s);
            self.below_run = 0;
            if self.pending.len() >= self.cfg.max_epoch {
                let start = self.start.take().unwrap_or(t);
                let pending = std::mem::take(&mut self.pending);
                out.push(SegmentedEpoch {
                    range: start..start + pending.len(),
                    samples: pending,
                    forced_split: true,
                });
                // Still in carrier: the next sample opens the follow-on
                // epoch with no gap between the two.
                self.start = Some(t + 1);
            }
        } else if let Some(start) = self.start {
            self.pending.push(s);
            self.below_run += 1;
            if self.below_run >= self.cfg.min_gap {
                // Confirmed gap: the below-threshold tail belongs to it.
                let keep = self.pending.len() - self.below_run;
                let mut pending = std::mem::take(&mut self.pending);
                pending.truncate(keep);
                trim_trailing_gap(&mut pending, threshold, self.cfg.smooth);
                if pending.len() >= self.cfg.min_epoch {
                    out.push(SegmentedEpoch {
                        range: start..start + pending.len(),
                        samples: pending,
                        forced_split: false,
                    });
                }
                self.start = None;
                self.below_run = 0;
            }
        } else {
            self.history.push_back(s);
            if self.history.len() > self.cfg.smooth / 2 {
                self.history.pop_front();
            }
        }
    }
}

/// Drops below-threshold samples from the epoch's tail, at most `smooth`
/// of them. The trailing average confirms a carrier drop up to one
/// smoothing window after it happened, so that many carrier-off samples
/// leak past the below-run accounting — and a carrier-off sample at the
/// slice boundary reads as a spurious giant edge downstream. The cap
/// keeps deep *modulation* dips (which the smoothed power rode through)
/// from being mistaken for the gap.
fn trim_trailing_gap(pending: &mut Vec<Complex>, threshold: f64, smooth: usize) {
    let extra = pending
        .iter()
        .rev()
        .take_while(|s| s.norm_sqr() < threshold)
        .count()
        .min(smooth);
    pending.truncate(pending.len() - extra);
}

/// Median by `total_cmp` (NaN-total, like `lf_dsp::stats::median`);
/// duplicated here to keep the segmenter's hot path free of cross-crate
/// inlining surprises — the two must agree only in spirit, the threshold
/// is a coarse half-power cut.
fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        0.5 * (v[mid - 1] + v[mid])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg_cfg() -> SegmenterConfig {
        SegmenterConfig {
            smooth: 8,
            min_gap: 64,
            min_epoch: 256,
            max_epoch: 1 << 20,
            threshold: ThresholdPolicy::Calibrate { window: 512 },
        }
    }

    /// Three 5000-sample carrier segments separated by 500-sample gaps —
    /// the offline splitter's reference fixture.
    fn three_epoch_signal() -> Vec<Complex> {
        let mut signal = Vec::new();
        for k in 0..3 {
            signal.extend(vec![Complex::new(0.4, -0.2); 5000]);
            if k < 2 {
                signal.extend(vec![Complex::new(0.001, 0.0); 500]);
            }
        }
        signal
    }

    fn run(signal: &[Complex], chunk: usize, cfg: SegmenterConfig) -> Vec<SegmentedEpoch> {
        let mut seg = OnlineSegmenter::new(cfg);
        let mut out = Vec::new();
        for c in signal.chunks(chunk.max(1)) {
            seg.push_chunk(c, &mut out);
        }
        seg.finish(&mut out);
        out
    }

    #[test]
    fn clean_gaps_are_found() {
        let signal = three_epoch_signal();
        let epochs = run(&signal, 4096, seg_cfg());
        assert_eq!(epochs.len(), 3, "{:?}", ranges(&epochs));
        for (k, e) in epochs.iter().enumerate() {
            assert!(
                (e.range.start as i64 - (k as i64 * 5500)).abs() < 64,
                "{:?}",
                e.range
            );
            assert!((e.range.len() as i64 - 5000).abs() < 64, "{:?}", e.range);
            assert_eq!(e.range.len(), e.samples.len());
            assert!(!e.forced_split);
        }
    }

    #[test]
    fn chunk_size_invariance_is_exact() {
        let signal = three_epoch_signal();
        let reference = run(&signal, usize::MAX, seg_cfg());
        for chunk in [1, 7, 100, 4096] {
            let got = run(&signal, chunk, seg_cfg());
            assert_eq!(ranges(&got), ranges(&reference), "chunk {chunk}");
            for (a, b) in got.iter().zip(&reference) {
                assert_eq!(a.samples, b.samples, "chunk {chunk}");
            }
        }
    }

    #[test]
    fn short_dips_are_not_gaps() {
        let mut signal = vec![Complex::new(0.4, -0.2); 4000];
        for s in signal.iter_mut().skip(2000).take(10) {
            *s = Complex::ZERO;
        }
        let epochs = run(&signal, 512, seg_cfg());
        assert_eq!(epochs.len(), 1);
        assert_eq!(epochs[0].range, 0..4000);
    }

    #[test]
    fn max_epoch_force_splits() {
        let signal = vec![Complex::new(0.4, -0.2); 3000];
        let mut cfg = seg_cfg();
        cfg.max_epoch = 1000;
        let epochs = run(&signal, 256, cfg);
        assert_eq!(epochs.len(), 3, "{:?}", ranges(&epochs));
        assert!(epochs[0].forced_split);
        assert!(epochs[1].forced_split);
        assert_eq!(epochs[0].range.len(), 1000);
        // The segments tile the capture with no overlap or hole.
        assert_eq!(epochs[0].range.end, epochs[1].range.start);
        assert_eq!(epochs[1].range.end, epochs[2].range.start);
    }

    #[test]
    fn fixed_threshold_needs_no_calibration() {
        let signal = three_epoch_signal();
        let mut cfg = seg_cfg();
        cfg.threshold = ThresholdPolicy::Fixed(0.05);
        let mut seg = OnlineSegmenter::new(cfg);
        assert_eq!(seg.threshold(), Some(0.05));
        let mut out = Vec::new();
        seg.push_chunk(&signal, &mut out);
        seg.finish(&mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn stream_shorter_than_calibration_window_still_flushes() {
        let signal = vec![Complex::new(0.4, -0.2); 300];
        let epochs = run(&signal, 64, seg_cfg());
        assert_eq!(epochs.len(), 1);
        assert_eq!(epochs[0].range, 0..300);
    }

    #[test]
    fn segments_agree_with_offline_splitter() {
        // Same fixture, same scales: the online segmenter must land
        // within a smoothing window of the offline reference.
        let signal = three_epoch_signal();
        let offline = lf_core::epoch::split_epochs(&signal, 8, 64, 256);
        let online = run(&signal, 2048, seg_cfg());
        assert_eq!(online.len(), offline.len());
        for (a, b) in online.iter().zip(&offline) {
            assert!(
                (a.range.start as i64 - b.start as i64).abs() <= 8,
                "{:?} vs {b:?}",
                a.range
            );
            assert!(
                (a.range.end as i64 - b.end as i64).abs() <= 64,
                "{:?} vs {b:?}",
                a.range
            );
        }
    }

    fn ranges(eps: &[SegmentedEpoch]) -> Vec<Range<usize>> {
        eps.iter().map(|e| e.range.clone()).collect()
    }
}
