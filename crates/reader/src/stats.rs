//! Live runtime statistics: counters, queue depths, latency percentiles.
//!
//! Counters are lock-free atomics bumped by the pipeline threads; decode
//! latencies go into fixed-size rings (last 1024 epochs per stage) under
//! a short-lived mutex. [`RuntimeStats`] is a self-consistent-enough
//! snapshot for a poll loop — the runtime keeps serving while it is
//! taken.

use lf_core::pipeline::StageTimings;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// How many recent epochs the latency percentiles are computed over.
const LATENCY_RING: usize = 1024;

/// Shared mutable statistics, owned by the runtime behind an `Arc`.
#[derive(Debug, Default)]
pub(crate) struct StatsShared {
    pub chunks_in: AtomicU64,
    pub samples_in: AtomicU64,
    pub epochs_in: AtomicU64,
    pub epochs_out: AtomicU64,
    pub epochs_dropped: AtomicU64,
    pub faults: AtomicU64,
    pub forced_splits: AtomicU64,
    latencies: Mutex<LatencyRings>,
}

#[derive(Debug, Default)]
struct LatencyRings {
    edges: VecDeque<u64>,
    tracking: VecDeque<u64>,
    analysis: VecDeque<u64>,
    total: VecDeque<u64>,
}

fn push_ring(ring: &mut VecDeque<u64>, v: u64) {
    ring.push_back(v);
    if ring.len() > LATENCY_RING {
        ring.pop_front();
    }
}

fn nanos_of(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl StatsShared {
    pub fn record_latency(&self, t: &StageTimings) {
        let mut rings = self
            .latencies
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        push_ring(&mut rings.edges, nanos_of(t.edges));
        push_ring(&mut rings.tracking, nanos_of(t.tracking));
        push_ring(&mut rings.analysis, nanos_of(t.analysis));
        push_ring(&mut rings.total, nanos_of(t.total));
    }

    pub fn snapshot(&self, job_queue_depth: usize, result_queue_depth: usize) -> RuntimeStats {
        let rings = self
            .latencies
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let latency = StageLatencies {
            edges: LatencySummary::of(&rings.edges),
            tracking: LatencySummary::of(&rings.tracking),
            analysis: LatencySummary::of(&rings.analysis),
            total: LatencySummary::of(&rings.total),
        };
        drop(rings);
        RuntimeStats {
            chunks_in: self.chunks_in.load(Ordering::Relaxed),
            samples_in: self.samples_in.load(Ordering::Relaxed),
            epochs_in: self.epochs_in.load(Ordering::Relaxed),
            epochs_out: self.epochs_out.load(Ordering::Relaxed),
            epochs_dropped: self.epochs_dropped.load(Ordering::Relaxed),
            faults: self.faults.load(Ordering::Relaxed),
            forced_splits: self.forced_splits.load(Ordering::Relaxed),
            job_queue_depth,
            result_queue_depth,
            latency,
        }
    }
}

/// Percentiles of one stage's decode latency over the recent ring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Epochs the summary covers (≤ 1024).
    pub count: usize,
    /// Median latency.
    pub p50: Duration,
    /// 90th percentile.
    pub p90: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Worst recent latency.
    pub max: Duration,
}

impl LatencySummary {
    fn of(ring: &VecDeque<u64>) -> Self {
        if ring.is_empty() {
            return LatencySummary::default();
        }
        let mut v: Vec<u64> = ring.iter().copied().collect();
        v.sort_unstable();
        let pick = |p: f64| -> Duration {
            // Nearest-rank percentile over the sorted ring.
            let rank = (p / 100.0 * v.len() as f64).ceil().max(1.0) as usize;
            Duration::from_nanos(v[rank.min(v.len()) - 1])
        };
        LatencySummary {
            count: v.len(),
            p50: pick(50.0),
            p90: pick(90.0),
            p99: pick(99.0),
            max: Duration::from_nanos(v[v.len() - 1]),
        }
    }
}

/// Per-stage latency summaries, matching `lf_core::StageTimings`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageLatencies {
    /// Edge detection (§3.1).
    pub edges: LatencySummary,
    /// Stream folding/tracking (§3.2).
    pub tracking: LatencySummary,
    /// Slot analysis through bit decode (§3.3–3.5).
    pub analysis: LatencySummary,
    /// Whole-epoch decode.
    pub total: LatencySummary,
}

/// A point-in-time view of the runtime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Chunks pulled from the source.
    pub chunks_in: u64,
    /// Samples pulled from the source.
    pub samples_in: u64,
    /// Epochs the segmenter emitted into the pipeline.
    pub epochs_in: u64,
    /// Epoch reports delivered to the consumer (decoded, dropped, or
    /// faulted — every segmented epoch is accounted for exactly once).
    pub epochs_out: u64,
    /// Epochs shed by the drop-oldest backpressure policy.
    pub epochs_dropped: u64,
    /// Worker panics contained (the epoch was reported as a fault).
    pub faults: u64,
    /// Epochs closed by the `max_epoch` bound instead of a carrier gap.
    pub forced_splits: u64,
    /// Jobs waiting for a worker right now.
    pub job_queue_depth: usize,
    /// Results waiting for the consumer right now.
    pub result_queue_depth: usize,
    /// Decode latency percentiles over the recent epochs.
    pub latency: StageLatencies,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_over_known_ring() {
        let mut ring = VecDeque::new();
        for k in 1..=100u64 {
            ring.push_back(k * 1000);
        }
        let s = LatencySummary::of(&ring);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, Duration::from_nanos(50_000));
        assert_eq!(s.p90, Duration::from_nanos(90_000));
        assert_eq!(s.p99, Duration::from_nanos(99_000));
        assert_eq!(s.max, Duration::from_nanos(100_000));
    }

    #[test]
    fn empty_ring_is_zero() {
        assert_eq!(
            LatencySummary::of(&VecDeque::new()),
            LatencySummary::default()
        );
    }

    #[test]
    fn ring_is_bounded() {
        let stats = StatsShared::default();
        let t = StageTimings {
            edges: Duration::from_micros(1),
            tracking: Duration::from_micros(2),
            analysis: Duration::from_micros(3),
            total: Duration::from_micros(6),
        };
        for _ in 0..(LATENCY_RING + 50) {
            stats.record_latency(&t);
        }
        let snap = stats.snapshot(0, 0);
        assert_eq!(snap.latency.total.count, LATENCY_RING);
        assert_eq!(snap.latency.total.p50, Duration::from_micros(6));
    }
}
