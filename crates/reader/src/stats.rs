//! Live runtime statistics: counters, queue depths, latency percentiles.
//!
//! Counters are [`lf_obs`] registry handles — sharded atomics bumped by
//! the pipeline threads that double as named metrics (`reader.*`) in the
//! runtime's [`lf_obs::ObsContext`]. Decode latencies additionally go
//! into fixed-size rings (last 1024 epochs per stage) under a short-lived
//! mutex: the registry histograms accumulate since startup, while the
//! rings give *exact* recent-window percentiles. [`RuntimeStats`] is a
//! self-consistent-enough snapshot for a poll loop — the runtime keeps
//! serving while it is taken.
//!
//! The per-stage breakdown is derived from the decode graph itself
//! ([`StageTimings::names`]), so a stage added to `lf_core::graph` shows
//! up here — and in the `reader.stage.<name>.ns` registry metrics —
//! without this file changing.

use lf_core::pipeline::StageTimings;
use lf_core::STAGE_COUNT;
use lf_obs::{Counter, Gauge, Histogram, ObsContext};
use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// How many recent epochs the latency percentiles are computed over.
const LATENCY_RING: usize = 1024;

/// Shared mutable statistics, owned by the runtime behind an `Arc`.
///
/// Every counter and gauge is a registry handle: when the runtime was
/// spawned with an enabled [`ObsContext`] they are readable (and
/// exportable) through that registry under `reader.*` names; with a
/// disabled context the handles are detached but still count, so
/// [`RuntimeStats`] works identically either way.
#[derive(Debug)]
pub(crate) struct StatsShared {
    pub chunks_in: Counter,
    pub samples_in: Counter,
    pub epochs_in: Counter,
    pub epochs_out: Counter,
    pub epochs_dropped: Counter,
    pub faults: Counter,
    pub forced_splits: Counter,
    job_queue_depth: Gauge,
    result_queue_depth: Gauge,
    /// One histogram per decode stage, in graph order; registered once at
    /// construction so the per-epoch path never formats a metric name.
    h_stages: [Histogram; STAGE_COUNT],
    h_total: Histogram,
    latencies: Mutex<LatencyRings>,
}

impl Default for StatsShared {
    fn default() -> Self {
        StatsShared::new(&ObsContext::disabled())
    }
}

#[derive(Debug, Default)]
struct LatencyRings {
    per_stage: [VecDeque<u64>; STAGE_COUNT],
    total: VecDeque<u64>,
}

fn push_ring(ring: &mut VecDeque<u64>, v: u64) {
    ring.push_back(v);
    if ring.len() > LATENCY_RING {
        ring.pop_front();
    }
}

pub(crate) fn nanos_of(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl StatsShared {
    /// Creates the runtime's statistics block, registering every counter,
    /// gauge, and latency histogram in `obs` under `reader.*` names.
    pub fn new(obs: &ObsContext) -> Self {
        let names = StageTimings::names();
        StatsShared {
            chunks_in: obs.counter("reader.chunks_in"),
            samples_in: obs.counter("reader.samples_in"),
            epochs_in: obs.counter("reader.epochs_in"),
            epochs_out: obs.counter("reader.epochs_out"),
            epochs_dropped: obs.counter("reader.epochs_dropped"),
            faults: obs.counter("reader.faults"),
            forced_splits: obs.counter("reader.forced_splits"),
            job_queue_depth: obs.gauge("reader.job_queue_depth"),
            result_queue_depth: obs.gauge("reader.result_queue_depth"),
            h_stages: std::array::from_fn(|i| {
                obs.histogram(&format!("reader.stage.{}.ns", names[i]))
            }),
            h_total: obs.histogram("reader.stage.total.ns"),
            latencies: Mutex::new(LatencyRings::default()),
        }
    }

    /// Records one epoch's latencies. `exemplar` is `(epoch seq, rate
    /// class key)`: every histogram bucket the timings land in remembers
    /// it, so a p99 outlier in a snapshot links back to the offending
    /// epoch (see `lf_obs::HistogramSnapshot::exemplar_near_quantile`).
    pub fn record_latency(&self, t: &StageTimings, exemplar: (u64, u64)) {
        let (seq, key) = exemplar;
        for (h, d) in self.h_stages.iter().zip(t.per_stage) {
            h.record_with_exemplar(nanos_of(d), seq, key);
        }
        self.h_total
            .record_with_exemplar(nanos_of(t.total), seq, key);
        let mut rings = self
            .latencies
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for (ring, d) in rings.per_stage.iter_mut().zip(t.per_stage) {
            push_ring(ring, nanos_of(d));
        }
        push_ring(&mut rings.total, nanos_of(t.total));
    }

    pub fn snapshot(&self, job_queue_depth: usize, result_queue_depth: usize) -> RuntimeStats {
        // Mirror the instantaneous depths into the gauges so a registry
        // export taken between polls sees them too.
        self.job_queue_depth
            .set(i64::try_from(job_queue_depth).unwrap_or(i64::MAX));
        self.result_queue_depth
            .set(i64::try_from(result_queue_depth).unwrap_or(i64::MAX));
        let rings = self
            .latencies
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let latency = StageLatencies {
            per_stage: std::array::from_fn(|i| LatencySummary::of(&rings.per_stage[i])),
            total: LatencySummary::of(&rings.total),
        };
        drop(rings);
        RuntimeStats {
            chunks_in: self.chunks_in.get(),
            samples_in: self.samples_in.get(),
            epochs_in: self.epochs_in.get(),
            epochs_out: self.epochs_out.get(),
            epochs_dropped: self.epochs_dropped.get(),
            faults: self.faults.get(),
            forced_splits: self.forced_splits.get(),
            job_queue_depth,
            result_queue_depth,
            latency,
        }
    }
}

/// Percentiles of one stage's decode latency over the recent ring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Epochs the summary covers (≤ 1024).
    pub count: usize,
    /// Median latency.
    pub p50: Duration,
    /// 90th percentile.
    pub p90: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Worst recent latency.
    pub max: Duration,
}

impl LatencySummary {
    /// Nearest-rank percentiles over the ring. Degenerate cases are
    /// exact by construction: an empty ring is all-zero with `count == 0`
    /// (distinguishable from a real zero-latency sample only by the
    /// count), and a single sample reports that sample at every
    /// percentile and as the max — including a saturated `u64::MAX`
    /// nanosecond reading, which must survive unclipped.
    fn of(ring: &VecDeque<u64>) -> Self {
        if ring.is_empty() {
            return LatencySummary::default();
        }
        let mut v: Vec<u64> = ring.iter().copied().collect();
        v.sort_unstable();
        let pick = |p: f64| -> Duration {
            // Nearest-rank percentile over the sorted ring. The clamp to
            // [1, len] keeps the rank exact at both tails (p→0 picks the
            // minimum, p→100 the maximum) for any ring length, including
            // a single sample.
            let rank = (p / 100.0 * v.len() as f64)
                .ceil()
                .clamp(1.0, v.len() as f64) as usize;
            Duration::from_nanos(v[rank - 1])
        };
        LatencySummary {
            count: v.len(),
            p50: pick(50.0),
            p90: pick(90.0),
            p99: pick(99.0),
            max: Duration::from_nanos(v[v.len() - 1]),
        }
    }
}

/// Per-stage latency summaries, indexed like `lf_core::StageTimings` —
/// one entry per decode-graph stage, in execution order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageLatencies {
    /// One summary per decode stage, in graph order.
    pub per_stage: [LatencySummary; STAGE_COUNT],
    /// Whole-epoch decode.
    pub total: LatencySummary,
}

impl StageLatencies {
    /// The stage names, in the same order as [`StageLatencies::per_stage`]
    /// (`"total"` is separate — it is the whole-epoch latency, not a
    /// stage).
    pub fn names() -> [&'static str; STAGE_COUNT] {
        StageTimings::names()
    }

    /// The summary for the stage called `name`, if there is one.
    pub fn get(&self, name: &str) -> Option<LatencySummary> {
        Self::names()
            .iter()
            .position(|&n| n == name)
            .map(|i| self.per_stage[i])
    }

    /// `(stage name, summary)` pairs in execution order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, LatencySummary)> + '_ {
        Self::names().into_iter().zip(self.per_stage)
    }
}

/// A point-in-time view of the runtime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Chunks pulled from the source.
    pub chunks_in: u64,
    /// Samples pulled from the source.
    pub samples_in: u64,
    /// Epochs the segmenter emitted into the pipeline.
    pub epochs_in: u64,
    /// Epoch reports delivered to the consumer (decoded, dropped, or
    /// faulted — every segmented epoch is accounted for exactly once).
    pub epochs_out: u64,
    /// Epochs shed by the drop-oldest backpressure policy.
    pub epochs_dropped: u64,
    /// Worker panics contained (the epoch was reported as a fault).
    pub faults: u64,
    /// Epochs closed by the `max_epoch` bound instead of a carrier gap.
    pub forced_splits: u64,
    /// Jobs waiting for a worker right now.
    pub job_queue_depth: usize,
    /// Results waiting for the consumer right now.
    pub result_queue_depth: usize,
    /// Decode latency percentiles over the recent epochs.
    pub latency: StageLatencies,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A timings block with stage `i` taking `i + 1` µs and the total
    /// their sum — distinct values so index mix-ups show up.
    fn sample_timings() -> StageTimings {
        let per_stage: [Duration; STAGE_COUNT] =
            std::array::from_fn(|i| Duration::from_micros(i as u64 + 1));
        StageTimings {
            per_stage,
            total: per_stage.iter().sum::<Duration>(),
        }
    }

    #[test]
    fn percentiles_over_known_ring() {
        let mut ring = VecDeque::new();
        for k in 1..=100u64 {
            ring.push_back(k * 1000);
        }
        let s = LatencySummary::of(&ring);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, Duration::from_nanos(50_000));
        assert_eq!(s.p90, Duration::from_nanos(90_000));
        assert_eq!(s.p99, Duration::from_nanos(99_000));
        assert_eq!(s.max, Duration::from_nanos(100_000));
    }

    #[test]
    fn empty_ring_is_zero() {
        assert_eq!(
            LatencySummary::of(&VecDeque::new()),
            LatencySummary::default()
        );
    }

    #[test]
    fn single_sample_is_exact_at_every_percentile() {
        let mut ring = VecDeque::new();
        ring.push_back(42_000u64);
        let s = LatencySummary::of(&ring);
        assert_eq!(s.count, 1);
        let exact = Duration::from_nanos(42_000);
        assert_eq!(s.p50, exact);
        assert_eq!(s.p90, exact);
        assert_eq!(s.p99, exact);
        assert_eq!(s.max, exact);
    }

    #[test]
    fn saturated_single_sample_survives_unclipped() {
        // A Duration too large for u64 nanoseconds saturates on record;
        // the summary must carry the sentinel through, not mangle it.
        let mut ring = VecDeque::new();
        ring.push_back(u64::MAX);
        let s = LatencySummary::of(&ring);
        assert_eq!(s.count, 1);
        assert_eq!(s.p50, Duration::from_nanos(u64::MAX));
        assert_eq!(s.p99, Duration::from_nanos(u64::MAX));
        assert_eq!(s.max, Duration::from_nanos(u64::MAX));
    }

    #[test]
    fn ring_is_bounded() {
        let stats = StatsShared::default();
        let t = sample_timings();
        for _ in 0..(LATENCY_RING + 50) {
            stats.record_latency(&t, (0, 0));
        }
        let snap = stats.snapshot(0, 0);
        assert_eq!(snap.latency.total.count, LATENCY_RING);
        assert_eq!(snap.latency.total.p50, t.total);
    }

    #[test]
    fn stage_summaries_follow_graph_order() {
        let stats = StatsShared::default();
        let t = sample_timings();
        stats.record_latency(&t, (0, 0));
        let snap = stats.snapshot(0, 0);
        for (i, (name, summary)) in snap.latency.iter().enumerate() {
            assert_eq!(summary.count, 1, "stage {name}");
            assert_eq!(summary.p50, t.per_stage[i], "stage {name}");
            assert_eq!(snap.latency.get(name), Some(summary));
        }
        assert_eq!(snap.latency.get("total"), None);
        assert_eq!(snap.latency.get("no-such-stage"), None);
    }

    #[test]
    fn counters_surface_through_the_registry() {
        let obs = ObsContext::new();
        let stats = StatsShared::new(&obs);
        stats.chunks_in.add(3);
        stats.epochs_in.inc();
        stats.record_latency(&sample_timings(), (0, 0));
        let _ = stats.snapshot(2, 1);
        let snap = obs.registry_snapshot();
        assert_eq!(
            snap.get("reader.chunks_in"),
            Some(&lf_obs::MetricValue::Counter(3))
        );
        assert_eq!(
            snap.get("reader.epochs_in"),
            Some(&lf_obs::MetricValue::Counter(1))
        );
        assert_eq!(
            snap.get("reader.job_queue_depth"),
            Some(&lf_obs::MetricValue::Gauge(2))
        );
        // Every stage histogram is registered under its graph name.
        for name in StageLatencies::names() {
            let key = format!("reader.stage.{name}.ns");
            let Some(lf_obs::MetricValue::Histogram(h)) = snap.get(&key) else {
                panic!("missing stage histogram {key}");
            };
            assert_eq!(h.count, 1, "{key}");
        }
        let Some(lf_obs::MetricValue::Histogram(h)) = snap.get("reader.stage.total.ns") else {
            panic!("missing total-latency histogram");
        };
        assert_eq!(h.count, 1);
    }

    #[test]
    fn disabled_context_still_counts() {
        let stats = StatsShared::new(&ObsContext::disabled());
        stats.faults.inc();
        stats.faults.inc();
        assert_eq!(stats.snapshot(0, 0).faults, 2);
    }
}
