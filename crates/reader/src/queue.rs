//! A bounded MPMC queue on `Mutex` + `Condvar`.
//!
//! The runtime's stages are tied together by queues whose depth is a hard
//! bound, not a hint: an SDR appliance that buffers without limit falls
//! arbitrarily far behind the air interface and then dies of memory
//! instead of shedding load. `std::sync::mpsc::channel` is unbounded (and
//! single-consumer), so the runtime uses this queue everywhere — the
//! `cargo xtask lint` rule `no-unbounded-channel` keeps it that way.
//!
//! Two produce disciplines implement the two backpressure policies:
//! [`BoundedQueue::push_block`] (lossless, producer waits) and
//! [`BoundedQueue::push_drop_oldest`] (lossy, evicts the oldest queued
//! item and never blocks). [`BoundedQueue::push_forced`] exists for
//! constant-size tombstone records that must not be lost *and* must not
//! deadlock the producer; it may transiently exceed the capacity.

use std::collections::VecDeque;
// Under the `lf-check` feature the sync primitives come from the model
// scheduler's shims (passthrough outside a model run), so the queue's
// interleavings can be explored exhaustively by tests/model_queue.rs.
// The code below is identical either way — the shims are std-shaped,
// down to `PoisonError` on panicked owners.
#[cfg(feature = "lf-check")]
use lf_check::sync::{Condvar, Mutex, MutexGuard, PoisonError};
#[cfg(not(feature = "lf-check"))]
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// A panic in one worker must not wedge the whole runtime: locks are
/// recovered from poisoning instead of propagating it. The protected
/// state is a plain `VecDeque` whose invariants hold between operations,
/// so a poisoned lock only means some *other* thread died — the queue
/// itself is intact.
fn recover<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (racy by nature; for stats snapshots).
    pub fn len(&self) -> usize {
        recover(self.state.lock()).items.len()
    }

    /// Whether the queue is currently empty (racy; for stats snapshots).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once the queue is closed *and* drained — the end-of-stream
    /// condition under which [`BoundedQueue::pop`] returns `None`
    /// immediately. Unlike [`BoundedQueue::is_empty`] this observation
    /// is stable: `closed` is sticky and a closed queue rejects every
    /// producer, so once this returns true it returns true forever.
    /// Lets a non-blocking consumer distinguish "nothing *yet*"
    /// ([`BoundedQueue::try_pop`] → `None` while open) from "nothing
    /// *ever again*".
    pub fn is_closed_and_empty(&self) -> bool {
        let st = recover(self.state.lock());
        st.closed && st.items.is_empty()
    }

    /// Blocks until there is room, then enqueues. Returns the item back
    /// if the queue was closed before room appeared.
    pub fn push_block(&self, item: T) -> Result<(), T> {
        let mut st = recover(self.state.lock());
        while st.items.len() >= self.capacity && !st.closed {
            st = recover(self.not_full.wait(st));
        }
        if st.closed {
            return Err(item);
        }
        st.items.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues without ever blocking: if the queue is full, the *oldest*
    /// queued item is evicted and returned. Returns `Err(item)` if closed.
    pub fn push_drop_oldest(&self, item: T) -> Result<Option<T>, T> {
        let mut st = recover(self.state.lock());
        if st.closed {
            return Err(item);
        }
        let evicted = if st.items.len() >= self.capacity {
            st.items.pop_front()
        } else {
            None
        };
        st.items.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(evicted)
    }

    /// Enqueues regardless of capacity (never blocks, never evicts).
    /// Reserved for constant-size accounting records — anything larger
    /// would defeat the queue's bound. Returns `Err(item)` if closed.
    pub fn push_forced(&self, item: T) -> Result<(), T> {
        let mut st = recover(self.state.lock());
        if st.closed {
            return Err(item);
        }
        st.items.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained; `None` means end of stream.
    pub fn pop(&self) -> Option<T> {
        let mut st = recover(self.state.lock());
        loop {
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = recover(self.not_empty.wait(st));
        }
    }

    /// Non-blocking pop; `None` means currently empty (closed or not).
    pub fn try_pop(&self) -> Option<T> {
        let mut st = recover(self.state.lock());
        let item = st.items.pop_front();
        drop(st);
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Closes the queue: producers fail fast, consumers drain what is
    /// left and then see `None`. Idempotent.
    pub fn close(&self) {
        let mut st = recover(self.state.lock());
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order_and_close_drain() {
        let q = BoundedQueue::new(4);
        for k in 0..3 {
            q.push_block(k).unwrap();
        }
        q.close();
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.push_block(9).is_err());
    }

    #[test]
    fn drop_oldest_evicts_head() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.push_drop_oldest(1).unwrap(), None);
        assert_eq!(q.push_drop_oldest(2).unwrap(), None);
        assert_eq!(q.push_drop_oldest(3).unwrap(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn forced_push_exceeds_capacity() {
        let q = BoundedQueue::new(1);
        q.push_block(1).unwrap();
        q.push_forced(2).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn blocked_producer_wakes_on_pop() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push_block(0).unwrap();
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || q2.push_block(1).is_ok());
        thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn blocked_producer_wakes_on_close() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push_block(0).unwrap();
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || q2.push_block(1));
        thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(producer.join().unwrap(), Err(1));
    }

    #[test]
    fn close_drains_queued_items_before_none() {
        // Receiver-side close semantics: items enqueued before the close
        // are never lost — consumers drain them and only then see `None`.
        let q = BoundedQueue::new(4);
        q.push_block(10).unwrap();
        q.push_block(11).unwrap();
        q.close();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), None);
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn closed_and_empty_is_stable_end_of_stream() {
        let q = BoundedQueue::new(4);
        assert!(
            !q.is_closed_and_empty(),
            "open + empty is not end of stream"
        );
        q.push_block(1).unwrap();
        q.close();
        assert!(!q.is_closed_and_empty(), "closed but not yet drained");
        assert_eq!(q.pop(), Some(1));
        assert!(q.is_closed_and_empty());
        // Stable: producers can no longer disturb it.
        assert!(q.push_block(2).is_err());
        assert!(q.push_forced(3).is_err());
        assert!(q.push_drop_oldest(4).is_err());
        assert!(q.is_closed_and_empty());
    }

    #[test]
    fn capacity_one_eviction_chain() {
        // At the minimum capacity every drop-oldest push evicts, so the
        // queue holds exactly the newest item at all times.
        let q = BoundedQueue::new(1);
        assert_eq!(q.push_drop_oldest(1).unwrap(), None);
        assert_eq!(q.push_drop_oldest(2).unwrap(), Some(1));
        assert_eq!(q.push_drop_oldest(3).unwrap(), Some(2));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn drop_oldest_does_not_wake_blocked_sender() {
        // A drop-oldest push on a full queue evicts and replaces — the
        // queue stays full, so a sender blocked in push_block must keep
        // waiting until a consumer actually pops.
        let q = Arc::new(BoundedQueue::new(1));
        q.push_block(0).unwrap();
        let q2 = Arc::clone(&q);
        let blocked = thread::spawn(move || q2.push_block(99));
        thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.push_drop_oldest(1).unwrap(), Some(0));
        thread::sleep(std::time::Duration::from_millis(20));
        // Queue still holds exactly the drop-oldest item; the pop frees a
        // slot and the blocked sender completes.
        assert_eq!(q.pop(), Some(1));
        assert!(blocked.join().unwrap().is_ok());
        assert_eq!(q.pop(), Some(99));
    }
}
