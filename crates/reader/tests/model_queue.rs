//! Model-checked interleavings of [`lf_reader::BoundedQueue`].
//!
//! Built with `--features lf-check`, the queue's `Mutex`/`Condvar` come
//! from the `lf-check` scheduler shims, so every test here explores the
//! *whole* bounded schedule space — DFS over every scheduling decision,
//! preemption-bounded (see `lf_check::ModelConfig`) — instead of the one
//! interleaving the OS happens to pick. The sleep-based tests in
//! `queue.rs` check the same properties on the real primitives; these
//! prove them for all schedules within the bound.
//!
//! Assertion style: each closure asserts its property *inside* the model
//! run (a failing assert surfaces as a `Failure` carrying the exact
//! schedule), and the test then checks both that no failure was found and
//! that the space was exhausted — a clean-but-truncated run would be a
//! much weaker claim.

#![cfg(feature = "lf-check")]

use lf_check::{model_with, thread, ModelConfig};
use lf_reader::BoundedQueue;
use std::sync::Arc;

/// Runs `f` under the default exploration bound and insists the bounded
/// space was fully explored with no failing schedule.
fn exhaustively(f: impl Fn() + Send + Sync + 'static) {
    let report = model_with(ModelConfig::default(), f);
    assert!(
        report.failure.is_none(),
        "model found a failing schedule: {:?}",
        report.failure
    );
    assert!(
        report.exhausted,
        "bounded space not exhausted in {} iterations",
        report.iterations
    );
    assert!(report.iterations > 1, "exploration degenerated");
}

#[test]
fn mpmc_block_delivery_is_exactly_once() {
    // 2 producers × 1 item, 2 consumers × 1 pop, capacity 1: in every
    // schedule each item is delivered to exactly one consumer — no loss,
    // no duplication, even when a producer blocks on the full queue.
    exhaustively(|| {
        let q = Arc::new(BoundedQueue::new(1));
        let producers: Vec<_> = (1u32..=2)
            .map(|v| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.push_block(v).is_ok())
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.pop())
            })
            .collect();
        for p in producers {
            assert!(p.join().expect("producer"), "push_block failed while open");
        }
        let mut got: Vec<u32> = consumers
            .into_iter()
            .map(|c| c.join().expect("consumer").expect("pop saw None"))
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2], "items must arrive exactly once");
    });
}

#[test]
fn drop_oldest_tombstones_account_for_every_item() {
    // Lossy discipline, capacity 1: every pushed item is either evicted
    // (returned to the producer as a tombstone) or drained by a consumer.
    // The eviction count is schedule-dependent; the conservation law is
    // not.
    exhaustively(|| {
        let q = Arc::new(BoundedQueue::new(1));
        let producers: Vec<_> = [vec![1u32, 2], vec![3, 4]]
            .into_iter()
            .map(|items| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut evicted = 0usize;
                    for item in items {
                        if q.push_drop_oldest(item).expect("open").is_some() {
                            evicted += 1;
                        }
                    }
                    evicted
                })
            })
            .collect();
        let evicted: usize = producers
            .into_iter()
            .map(|p| p.join().expect("producer"))
            .sum();
        let mut drained = 0usize;
        while q.try_pop().is_some() {
            drained += 1;
        }
        assert_eq!(
            evicted + drained,
            4,
            "push ⇒ evicted or drained, never lost"
        );
        // Capacity 1 and four pushes onto a never-empty queue pin the
        // split exactly: three evictions, one survivor.
        assert_eq!((evicted, drained), (3, 1));
    });
}

#[test]
fn drop_oldest_never_unblocks_a_waiting_sender() {
    // A sender blocked in push_block on a full queue must stay blocked
    // across a drop-oldest push (which evicts and refills — the queue
    // never gains room). Only a real pop releases it. The outcome is the
    // same in *every* schedule, which is exactly what the model proves.
    exhaustively(|| {
        let q = Arc::new(BoundedQueue::new(1));
        q.push_block(0u32).expect("open");
        let sender = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push_block(99))
        };
        let dropper = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push_drop_oldest(1))
        };
        // The dropper never blocks; the sender cannot have slipped in
        // before it (the queue is full from the start), so the eviction
        // is always the original head.
        let evicted = dropper.join().expect("dropper").expect("open");
        assert_eq!(evicted, Some(0), "drop-oldest evicts the head");
        // First pop must see the dropper's item (the sender is still
        // parked — the queue never had room); it frees the slot, the
        // sender lands, and the second pop drains it.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(99));
        assert!(sender.join().expect("sender").is_ok());
    });
}

#[test]
fn close_never_drops_already_queued_items() {
    // Receiver-side close racing a draining consumer: items enqueued
    // before the close are always delivered, in order, before the
    // consumer observes end-of-stream.
    exhaustively(|| {
        let q = Arc::new(BoundedQueue::new(4));
        q.push_block(10u32).expect("open");
        q.push_block(11u32).expect("open");
        let closer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.close())
        };
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        closer.join().expect("closer");
        let got = consumer.join().expect("consumer");
        assert_eq!(got, vec![10, 11], "close lost or reordered queued items");
    });
}

#[test]
fn closing_under_a_blocked_sender_returns_the_item() {
    // push_block parked on a full queue + a racing close: the sender must
    // come back with its item (Err), never lose it and never deadlock —
    // the close's notify_all has to reach the not_full waiter.
    exhaustively(|| {
        let q = Arc::new(BoundedQueue::new(1));
        q.push_block(0u32).expect("open");
        let sender = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push_block(7))
        };
        let closer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.close())
        };
        closer.join().expect("closer");
        assert_eq!(sender.join().expect("sender"), Err(7));
        // The pre-close item still drains.
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), None);
    });
}
