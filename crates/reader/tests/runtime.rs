//! End-to-end contract tests for the streaming runtime: determinism
//! against the sequential reference, exact backpressure accounting under
//! both policies, and worker panic containment.

// Shared fixture helpers sit outside any `#[test]` fn, where the
// workspace unwrap gate would fire; a panic is the failure report here
// exactly as it is inside the tests themselves.
#![allow(clippy::unwrap_used)]

use lf_core::pipeline::{Decoder, EpochDecode, StageTimings};
use lf_reader::{
    sequential_decode, Backpressure, DiagSinks, EpochDecoder, EpochReport, EpochResult,
    ReaderRuntime, RuntimeConfig, ScenarioSource, SegmenterConfig, SliceSource, ThresholdPolicy,
};
use lf_sim::scenario::{Scenario, ScenarioTag};
use lf_types::{Complex, RatePlan, SampleRate};
use std::sync::Arc;
use std::time::Duration;

/// A seeded four-tag mixed-rate scenario (scaled to 1 Msps so the test
/// decodes in milliseconds).
fn four_tag_scenario() -> Scenario {
    let tags = vec![
        ScenarioTag::sensor(1_000.0)
            .with_payload_bits(16)
            .at_distance(2.2),
        ScenarioTag::sensor(5_000.0)
            .with_payload_bits(32)
            .at_distance(1.8),
        ScenarioTag::sensor(10_000.0)
            .with_payload_bits(32)
            .at_distance(1.6),
        ScenarioTag::sensor(20_000.0)
            .with_payload_bits(64)
            .at_distance(1.4),
    ];
    let mut s = Scenario::paper_default(tags, 20_000).at_sample_rate(SampleRate::from_msps(1.0));
    s.rate_plan = RatePlan::from_bps(100.0, &[1_000.0, 5_000.0, 10_000.0, 20_000.0]).unwrap();
    s.seed = 0x4ead_0042;
    s
}

fn drain(rt: &mut ReaderRuntime) -> Vec<EpochReport> {
    let mut got = Vec::new();
    while let Some(r) = rt.recv() {
        got.push(r);
    }
    got
}

/// The determinism guarantee: a 4-worker pool fed in 1 KiB chunks is
/// byte-identical (per epoch, in order) to the sequential reference fed
/// in 4 KiB chunks.
#[test]
fn parallel_pool_matches_sequential_decode() {
    let sc = four_tag_scenario();
    let dec_cfg = sc.decoder_config();
    let seg = SegmenterConfig::from_decoder(&dec_cfg);
    let decoder = Arc::new(Decoder::new(dec_cfg));

    let (seq_src, _) = ScenarioSource::new(sc.clone(), 4, 6_000, 4_096);
    let reference = sequential_decode(seq_src, &*decoder, seg);
    assert_eq!(reference.len(), 4, "segmenter must find all four epochs");
    for r in &reference {
        let d = r.decode().expect("sequential decode must succeed");
        assert!(!d.streams.is_empty(), "epoch {} decoded no streams", r.seq);
    }

    let (par_src, _) = ScenarioSource::new(sc, 4, 6_000, 1_024);
    let cfg = RuntimeConfig {
        workers: 4,
        job_queue: 2,
        result_queue: 2,
        backpressure: Backpressure::Block,
        segmenter: seg,
        diag: DiagSinks::default(),
    };
    let mut rt = ReaderRuntime::spawn(par_src, decoder, &cfg);
    let got = drain(&mut rt);
    let stats = rt.join();

    assert_eq!(got.len(), reference.len());
    for (a, b) in got.iter().zip(&reference) {
        assert_eq!(a.seq, b.seq);
        assert_eq!(a.range, b.range, "epoch {}", a.seq);
        assert_eq!(a.forced_split, b.forced_split);
        // Timings are wall-clock and may differ; the decodes may not.
        assert_eq!(
            format!("{:?}", a.decode()),
            format!("{:?}", b.decode()),
            "epoch {} decode differs from sequential reference",
            a.seq
        );
    }
    assert_eq!(stats.epochs_in, 4);
    assert_eq!(stats.epochs_out, 4);
    assert_eq!(stats.epochs_dropped, 0);
    assert_eq!(stats.faults, 0);
    assert_eq!(stats.latency.total.count, 4);
    assert!(stats.latency.total.p50 > Duration::ZERO);
    assert!(stats.latency.total.max >= stats.latency.total.p50);
}

// --- synthetic fixtures for the policy/containment tests -----------------

/// `n` square carrier epochs of `epoch_len` samples separated by
/// `gap_len` zero-power gaps; `marked` epochs get amplitude 3.0 (a
/// poison marker the test decoders key on), the rest amplitude 1.0.
fn synthetic_session(n: usize, epoch_len: usize, gap_len: usize, marked: &[usize]) -> Vec<Complex> {
    let mut signal = Vec::new();
    for k in 0..n {
        let amp = if marked.contains(&k) { 3.0 } else { 1.0 };
        signal.extend(std::iter::repeat_n(Complex::new(amp, 0.0), epoch_len));
        if k + 1 < n {
            signal.extend(std::iter::repeat_n(Complex::new(0.001, 0.0), gap_len));
        }
    }
    signal
}

fn synthetic_seg() -> SegmenterConfig {
    SegmenterConfig {
        smooth: 8,
        min_gap: 32,
        min_epoch: 64,
        max_epoch: 1 << 20,
        threshold: ThresholdPolicy::Fixed(0.25),
    }
}

/// A decoder stub whose per-epoch cost is controlled by the test.
#[derive(Debug)]
struct SlowDecoder {
    delay: Duration,
}

impl EpochDecoder for SlowDecoder {
    fn decode_epoch(
        &self,
        samples: &[Complex],
        _scratch: &mut lf_core::DecodeScratch,
    ) -> (EpochDecode, StageTimings) {
        std::thread::sleep(self.delay);
        (
            EpochDecode {
                streams: vec![],
                n_edges: samples.len(),
                n_tracked: 0,
                provenance: Default::default(),
            },
            StageTimings::default(),
        )
    }
}

/// A decoder that panics on marked (amplitude-3) epochs.
#[derive(Debug)]
struct PoisonableDecoder;

impl EpochDecoder for PoisonableDecoder {
    fn decode_epoch(
        &self,
        samples: &[Complex],
        _scratch: &mut lf_core::DecodeScratch,
    ) -> (EpochDecode, StageTimings) {
        assert!(
            !samples.iter().any(|s| s.re > 2.0),
            "poisoned epoch payload"
        );
        (
            EpochDecode {
                streams: vec![],
                n_edges: samples.len(),
                n_tracked: 0,
                provenance: Default::default(),
            },
            StageTimings::default(),
        )
    }
}

/// Drop-oldest under a slow consumer (well, a slow *pool*): epochs are
/// shed, and the accounting is exact — every segmented epoch is
/// delivered exactly once, as either a decode or a `Dropped` tombstone,
/// and the dropped counter equals the tombstone count.
#[test]
fn drop_oldest_accounting_is_exact() {
    const N: usize = 20;
    let signal = synthetic_session(N, 512, 128, &[]);
    let source = SliceSource::new(signal, 256);
    let cfg = RuntimeConfig {
        workers: 1,
        job_queue: 2,
        result_queue: 64,
        backpressure: Backpressure::DropOldest,
        segmenter: synthetic_seg(),
        diag: DiagSinks::default(),
    };
    let mut rt = ReaderRuntime::spawn(
        source,
        Arc::new(SlowDecoder {
            delay: Duration::from_millis(5),
        }),
        &cfg,
    );
    let got = drain(&mut rt);
    let stats = rt.join();

    assert_eq!(stats.epochs_in, N as u64, "segmenter must find every epoch");
    assert_eq!(got.len(), N, "every epoch must be delivered exactly once");
    let mut seqs: Vec<u64> = got.iter().map(|r| r.seq).collect();
    seqs.dedup();
    assert_eq!(
        seqs,
        (0..N as u64).collect::<Vec<_>>(),
        "in order, no holes"
    );

    let dropped = got
        .iter()
        .filter(|r| matches!(r.result, EpochResult::Dropped))
        .count();
    let decoded = got.iter().filter(|r| r.decode().is_some()).count();
    assert_eq!(decoded + dropped, N);
    assert_eq!(
        stats.epochs_dropped, dropped as u64,
        "counter must be exact"
    );
    assert!(
        dropped > 0,
        "a 5 ms/epoch pool behind an instant source must shed load"
    );
    assert_eq!(stats.epochs_out, N as u64);
    assert_eq!(stats.faults, 0);
}

/// The block policy under the same slow pool: ingestion stalls instead
/// of shedding, and no epoch is ever lost.
#[test]
fn block_policy_loses_nothing() {
    const N: usize = 20;
    let signal = synthetic_session(N, 512, 128, &[]);
    let source = SliceSource::new(signal, 256);
    let cfg = RuntimeConfig {
        workers: 2,
        job_queue: 2,
        result_queue: 2,
        backpressure: Backpressure::Block,
        segmenter: synthetic_seg(),
        diag: DiagSinks::default(),
    };
    let mut rt = ReaderRuntime::spawn(
        source,
        Arc::new(SlowDecoder {
            delay: Duration::from_millis(2),
        }),
        &cfg,
    );
    let got = drain(&mut rt);
    let stats = rt.join();

    assert_eq!(got.len(), N);
    for (k, r) in got.iter().enumerate() {
        assert_eq!(r.seq, k as u64);
        assert!(r.decode().is_some(), "epoch {k} must be decoded, not shed");
    }
    assert_eq!(stats.epochs_in, N as u64);
    assert_eq!(stats.epochs_out, N as u64);
    assert_eq!(stats.epochs_dropped, 0);
    assert_eq!(stats.faults, 0);
}

/// A panic inside one epoch's decode is contained: that epoch reports
/// `Faulted`, every other epoch still decodes, and the pool keeps
/// serving epochs segmented *after* the poisoned one.
#[test]
fn worker_panic_is_contained() {
    const N: usize = 8;
    const POISONED: usize = 2;
    let signal = synthetic_session(N, 512, 128, &[POISONED]);
    let source = SliceSource::new(signal, 1024);
    let cfg = RuntimeConfig {
        workers: 2,
        job_queue: 4,
        result_queue: 4,
        backpressure: Backpressure::Block,
        segmenter: synthetic_seg(),
        diag: DiagSinks::default(),
    };
    let mut rt = ReaderRuntime::spawn(source, Arc::new(PoisonableDecoder), &cfg);
    let got = drain(&mut rt);
    let stats = rt.join();

    assert_eq!(got.len(), N);
    for (k, r) in got.iter().enumerate() {
        assert_eq!(r.seq, k as u64);
        if k == POISONED {
            match &r.result {
                EpochResult::Faulted { message } => {
                    assert!(message.contains("poisoned"), "payload: {message}");
                }
                other => panic!("epoch {k} should have faulted, got {other:?}"),
            }
        } else {
            assert!(r.decode().is_some(), "epoch {k} must decode normally");
        }
    }
    assert_eq!(stats.faults, 1);
    assert_eq!(stats.epochs_out, N as u64);
    assert_eq!(stats.epochs_dropped, 0);
}

/// The `try_recv` ordering contract: polling with `try_recv` +
/// `is_finished` (no blocked consumer thread — the fleet coordinator's
/// access pattern) delivers exactly the sequence `recv` would have, in
/// order, and `is_finished` turns true only after the last report.
#[test]
fn try_recv_polls_the_same_sequence_to_end_of_stream() {
    const N: usize = 12;
    let signal = synthetic_session(N, 512, 128, &[]);
    let source = SliceSource::new(signal, 256);
    let cfg = RuntimeConfig {
        workers: 2,
        job_queue: 2,
        result_queue: 2,
        backpressure: Backpressure::Block,
        segmenter: synthetic_seg(),
        diag: DiagSinks::default(),
    };
    let mut rt = ReaderRuntime::spawn(
        source,
        Arc::new(SlowDecoder {
            delay: Duration::from_millis(1),
        }),
        &cfg,
    );
    let mut got = Vec::new();
    while !rt.is_finished() {
        match rt.try_recv() {
            Some(r) => got.push(r),
            // Nothing deliverable right now — the pipeline is working.
            None => std::thread::sleep(Duration::from_micros(200)),
        }
    }
    // Stable end of stream: stays None / finished forever after.
    assert!(rt.try_recv().is_none());
    assert!(rt.is_finished());
    assert_eq!(got.len(), N);
    for (k, r) in got.iter().enumerate() {
        assert_eq!(r.seq, k as u64, "in epoch order, no holes, no repeats");
        assert!(r.decode().is_some());
    }
    let stats = rt.join();
    assert_eq!(stats.epochs_out, N as u64);
}

/// Interleaving `try_recv` and `recv` arbitrarily still yields the one
/// ordered report sequence (they drain the same stream).
#[test]
fn try_recv_and_recv_interleave_without_reordering() {
    const N: usize = 10;
    let signal = synthetic_session(N, 512, 128, &[]);
    let source = SliceSource::new(signal, 512);
    let cfg = RuntimeConfig {
        workers: 2,
        job_queue: 4,
        result_queue: 4,
        backpressure: Backpressure::Block,
        segmenter: synthetic_seg(),
        diag: DiagSinks::default(),
    };
    let mut rt = ReaderRuntime::spawn(source, Arc::new(PoisonableDecoder), &cfg);
    let mut seqs = Vec::new();
    let mut use_try = true;
    loop {
        let report = if use_try {
            match rt.try_recv() {
                Some(r) => Some(r),
                None if rt.is_finished() => None,
                None => {
                    std::thread::sleep(Duration::from_micros(200));
                    continue;
                }
            }
        } else {
            rt.recv()
        };
        use_try = !use_try;
        match report {
            Some(r) => seqs.push(r.seq),
            None => break,
        }
    }
    assert_eq!(seqs, (0..N as u64).collect::<Vec<_>>());
}

/// Graceful shutdown mid-stream: whatever was queued is decoded and
/// delivered in order with no holes up to the cut, and the runtime's
/// threads exit (join returns).
#[test]
fn shutdown_drains_and_joins() {
    const N: usize = 30;
    let signal = synthetic_session(N, 512, 128, &[]);
    let source = SliceSource::new(signal, 64);
    let cfg = RuntimeConfig {
        workers: 2,
        job_queue: 2,
        result_queue: 2,
        backpressure: Backpressure::Block,
        segmenter: synthetic_seg(),
        diag: DiagSinks::default(),
    };
    let mut rt = ReaderRuntime::spawn(
        source,
        Arc::new(SlowDecoder {
            delay: Duration::from_millis(1),
        }),
        &cfg,
    );
    let first = rt.recv().expect("at least one epoch before shutdown");
    assert_eq!(first.seq, 0);
    rt.shutdown();
    let rest = drain(&mut rt);
    let stats = rt.join();

    // Contiguous prefix: seq 1, 2, ... with no holes.
    for (k, r) in rest.iter().enumerate() {
        assert_eq!(r.seq, 1 + k as u64);
    }
    assert_eq!(stats.epochs_out, 1 + rest.len() as u64);
    assert!(stats.epochs_out <= stats.epochs_in);
}
