//! # lf-channel
//!
//! The RF substrate the paper ran on physical hardware, rebuilt as a
//! simulator (see DESIGN.md §2 for the substitution argument):
//!
//! * [`linkbudget`] — the radar-equation link budget of §5.4, used for the
//!   range/robustness analysis (Fig. 14's 4 dB gap → 10 ft vs 8.1 ft).
//! * [`coeff`] — per-tag complex channel coefficients derived from tag
//!   placement (distance + random phase), the `h` of Eq. 1/Eq. 2.
//! * [`dynamics`] — the coefficient *processes* of Fig. 1: people moving
//!   near a tag, tag rotation, and near-field coupling between close tags.
//!   These are what break Buzz's channel-estimation assumption (§2.2).
//! * [`noise`] — seeded complex AWGN and SNR bookkeeping.
//! * [`air`] — the baseband synthesizer: combines tag antenna-toggle event
//!   streams, coefficient processes, the environment reflection, and noise
//!   into the IQ sample stream a USRP would capture (Eq. 2's linear
//!   combination, plus finite edge rise times).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod air;
pub mod coeff;
pub mod dynamics;
pub mod linkbudget;
pub mod noise;

pub use air::{synthesize, AirConfig, TagAir, ToggleEvent};
pub use coeff::TagPlacement;
pub use dynamics::{CoeffProcess, NearFieldCoupling, PeopleMovement, StaticChannel, TagRotation};
pub use linkbudget::LinkBudget;
pub use noise::Awgn;
