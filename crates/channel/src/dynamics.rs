//! Channel-coefficient dynamics (Fig. 1).
//!
//! §2.2 demonstrates three processes that change channel coefficients and
//! therefore break protocols that must re-estimate them (Buzz):
//!
//! * **People movement** (Fig. 1a) — multipath fading as a person walks
//!   around a stationary tag: slow, large-swing amplitude and phase wander.
//! * **Tag rotation** (Fig. 1b) — the tag antenna's dipole pattern sweeps
//!   through nulls as the tag rotates in place.
//! * **Near-field coupling** (Fig. 1c) — two tags within ~5 cm couple
//!   through their antennas, perturbing *both* coefficients; at ~1 m they
//!   are independent.
//!
//! LF-Backscatter itself only needs coefficients "relatively stable during
//! an epoch" (§3.4) — epochs are milliseconds while these processes evolve
//! over seconds, which is exactly the asymmetry the experiments probe.

use lf_types::Complex;
use rand::Rng;
use std::f64::consts::TAU;
use std::sync::Arc;

/// A time-varying channel coefficient.
pub trait CoeffProcess: Send + Sync {
    /// The coefficient at time `t` seconds from the start of the capture.
    fn coeff_at(&self, t: f64) -> Complex;
}

/// A constant coefficient: a static deployment with nothing moving.
#[derive(Debug, Clone, Copy)]
pub struct StaticChannel(pub Complex);

impl CoeffProcess for StaticChannel {
    fn coeff_at(&self, _t: f64) -> Complex {
        self.0
    }
}

/// Multipath fading from people moving near the tag (Fig. 1a): a sum of
/// slow sinusoidal fading components in amplitude plus a phase wander.
#[derive(Debug, Clone)]
pub struct PeopleMovement {
    base: Complex,
    /// (relative amplitude, frequency Hz, phase) fading components.
    components: Vec<(f64, f64, f64)>,
    /// (radians, frequency Hz, phase) of the phase wander.
    phase_wander: (f64, f64, f64),
}

impl PeopleMovement {
    /// Builds the process with explicit components (deterministic).
    pub fn with_components(
        base: Complex,
        components: Vec<(f64, f64, f64)>,
        phase_wander: (f64, f64, f64),
    ) -> Self {
        PeopleMovement {
            base,
            components,
            phase_wander,
        }
    }

    /// A representative walking-person process: fading components at
    /// fractions of a hertz (human walking speed ≈ 1 m/s moves through a
    /// 33 cm standing-wave pattern in fractions of a second) with randomly
    /// drawn phases. Swings reach ±60 % of the base amplitude, matching the
    /// magnitude of the excursions in Fig. 1a.
    pub fn typical<R: Rng>(base: Complex, rng: &mut R) -> Self {
        let mut phases = || rng.gen_range(0.0..TAU);
        PeopleMovement {
            base,
            components: vec![
                (0.35, 0.31, phases()),
                (0.20, 0.73, phases()),
                (0.10, 1.42, phases()),
            ],
            phase_wander: (0.7, 0.21, phases()),
        }
    }
}

impl CoeffProcess for PeopleMovement {
    fn coeff_at(&self, t: f64) -> Complex {
        let amp: f64 = 1.0
            + self
                .components
                .iter()
                .map(|&(a, f, p)| a * (TAU * f * t + p).sin())
                .sum::<f64>();
        let (pr, pf, pp) = self.phase_wander;
        let phase = pr * (TAU * pf * t + pp).sin();
        self.base.scale(amp.max(0.05)) * Complex::from_polar(1.0, phase)
    }
}

/// Tag rotation in place (Fig. 1b): the linear-dipole gain pattern
/// `|cos θ|` sweeps through nulls as the tag rotates at `omega` rad/s,
/// while the reflection phase advances with orientation.
#[derive(Debug, Clone, Copy)]
pub struct TagRotation {
    base: Complex,
    /// Rotation rate in rad/s.
    pub omega: f64,
    /// Initial orientation in radians.
    pub theta0: f64,
    /// Floor of the gain pattern (real antennas never null completely).
    pub pattern_floor: f64,
}

impl TagRotation {
    /// A tag rotating at `omega` rad/s from orientation `theta0`.
    pub fn new(base: Complex, omega: f64, theta0: f64) -> Self {
        TagRotation {
            base,
            omega,
            theta0,
            pattern_floor: 0.12,
        }
    }
}

impl CoeffProcess for TagRotation {
    fn coeff_at(&self, t: f64) -> Complex {
        let theta = self.theta0 + self.omega * t;
        let gain = self.pattern_floor + (1.0 - self.pattern_floor) * theta.cos().abs();
        self.base.scale(gain) * Complex::from_polar(1.0, 0.5 * theta.sin())
    }
}

/// Shared state of a coupled tag pair (Fig. 1c).
#[derive(Debug)]
struct CouplingInner {
    base: [Complex; 2],
    /// Separation in metres as a function of time.
    separation: Separation,
    /// Coupling strength at contact.
    kappa0: f64,
    /// e-folding distance of the near field, metres.
    d0: f64,
    /// Phase of the coupled re-radiation.
    psi: f64,
}

/// Separation profile of the tag pair.
#[derive(Debug, Clone, Copy)]
pub enum Separation {
    /// Tags stay `d` metres apart.
    Constant(f64),
    /// Tags approach linearly from `from` to `to` metres over `duration`
    /// seconds, then hold (the Fig. 1c experiment: "two tags were placed
    /// far apart, and then brought closer together").
    LinearApproach {
        /// Starting separation (m).
        from: f64,
        /// Final separation (m).
        to: f64,
        /// Time to travel from `from` to `to` (s).
        duration: f64,
    },
}

impl Separation {
    fn at(&self, t: f64) -> f64 {
        match *self {
            Separation::Constant(d) => d,
            Separation::LinearApproach { from, to, duration } => {
                if t >= duration {
                    to
                } else {
                    from + (to - from) * (t / duration)
                }
            }
        }
    }
}

/// Near-field coupling between two tags: each tag's effective coefficient
/// gains a contribution re-radiated through the other's antenna, with
/// strength `κ(d) = κ0·exp(−d/d0)` — negligible at 1 m, strong at 5 cm,
/// matching Fig. 1c.
#[derive(Debug, Clone)]
pub struct NearFieldCoupling {
    inner: Arc<CouplingInner>,
}

impl NearFieldCoupling {
    /// Builds the coupled pair model. `kappa0` defaults well at 0.6 and
    /// `d0` at 0.04 m (the near field of a 915 MHz dipole is λ/2π ≈ 5 cm).
    pub fn new(base1: Complex, base2: Complex, separation: Separation) -> Self {
        NearFieldCoupling {
            inner: Arc::new(CouplingInner {
                base: [base1, base2],
                separation,
                kappa0: 0.6,
                d0: 0.04,
                psi: 1.1,
            }),
        }
    }

    /// Coupling strength at time `t`.
    pub fn kappa_at(&self, t: f64) -> f64 {
        let d = self.inner.separation.at(t);
        self.inner.kappa0 * (-d / self.inner.d0).exp()
    }

    /// The coefficient of tag `idx` (0 or 1) at time `t`.
    pub fn coeff_of(&self, idx: usize, t: f64) -> Complex {
        assert!(idx < 2);
        let k = self.kappa_at(t);
        let own = self.inner.base[idx];
        let other = self.inner.base[1 - idx];
        // Detuning of the own antenna plus parasitic re-radiation via the
        // neighbour, both scaled by the near-field strength.
        own * Complex::from_polar(1.0 - 0.4 * k, 0.0)
            + (other * Complex::from_polar(k, self.inner.psi))
    }

    /// Splits the pair into two `CoeffProcess` handles sharing state, one
    /// per tag, for use with the air synthesizer.
    pub fn split(self) -> (CoupledTag, CoupledTag) {
        (
            CoupledTag {
                pair: self.clone(),
                idx: 0,
            },
            CoupledTag { pair: self, idx: 1 },
        )
    }
}

/// One side of a [`NearFieldCoupling`] pair.
#[derive(Debug, Clone)]
pub struct CoupledTag {
    pair: NearFieldCoupling,
    idx: usize,
}

impl CoeffProcess for CoupledTag {
    fn coeff_at(&self, t: f64) -> Complex {
        self.pair.coeff_of(self.idx, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const H: Complex = Complex { re: 0.1, im: 0.05 };

    #[test]
    fn static_channel_is_constant() {
        let c = StaticChannel(H);
        assert_eq!(c.coeff_at(0.0), H);
        assert_eq!(c.coeff_at(100.0), H);
    }

    #[test]
    fn people_movement_varies_substantially_over_seconds() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = PeopleMovement::typical(H, &mut rng);
        let h0 = p.coeff_at(0.0);
        let mut max_dev: f64 = 0.0;
        for k in 0..1200 {
            let t = k as f64 * 0.01;
            max_dev = max_dev.max(p.coeff_at(t).distance(h0));
        }
        // Fig. 1a shows excursions comparable to the signal itself.
        assert!(
            max_dev > 0.3 * H.abs(),
            "movement too tame: {max_dev} vs base {}",
            H.abs()
        );
    }

    #[test]
    fn people_movement_is_stable_within_an_epoch() {
        // §3.4's assumption: coefficients are stable over a few ms.
        let mut rng = StdRng::seed_from_u64(2);
        let p = PeopleMovement::typical(H, &mut rng);
        let h0 = p.coeff_at(1.0);
        for k in 0..50 {
            let t = 1.0 + k as f64 * 1e-4; // 5 ms window
            assert!(
                p.coeff_at(t).distance(h0) < 0.02 * H.abs(),
                "coefficient moved within an epoch"
            );
        }
    }

    #[test]
    fn rotation_sweeps_through_near_nulls() {
        let r = TagRotation::new(H, 1.0, 0.0);
        let mut min_amp = f64::INFINITY;
        let mut max_amp: f64 = 0.0;
        for k in 0..1000 {
            let a = r.coeff_at(k as f64 * 0.01).abs();
            min_amp = min_amp.min(a);
            max_amp = max_amp.max(a);
        }
        assert!(max_amp / min_amp > 4.0, "rotation pattern too flat");
        assert!(min_amp > 0.0, "pattern must not null completely");
    }

    #[test]
    fn coupling_negligible_far_strong_near() {
        let h2 = Complex::new(-0.08, 0.06);
        // ~1 m apart: coefficients essentially the bases (Fig. 1c's flat
        // region).
        let far = NearFieldCoupling::new(H, h2, Separation::Constant(1.0));
        assert!(far.coeff_of(0, 0.0).distance(H) < 1e-3 * H.abs());
        // 5 cm apart: both coefficients visibly perturbed.
        let near = NearFieldCoupling::new(H, h2, Separation::Constant(0.05));
        assert!(near.coeff_of(0, 0.0).distance(H) > 0.1 * H.abs());
        assert!(near.coeff_of(1, 0.0).distance(h2) > 0.1 * h2.abs());
    }

    #[test]
    fn approach_transitions_from_independent_to_coupled() {
        let h2 = Complex::new(-0.08, 0.06);
        let pair = NearFieldCoupling::new(
            H,
            h2,
            Separation::LinearApproach {
                from: 1.0,
                to: 0.05,
                duration: 6.0,
            },
        );
        let early = pair.coeff_of(0, 0.0);
        let late = pair.coeff_of(0, 10.0);
        assert!(early.distance(H) < late.distance(H));
        // Holds after the approach completes.
        assert!(pair
            .coeff_of(0, 10.0)
            .approx_eq(pair.coeff_of(0, 12.0), 1e-12));
    }

    #[test]
    fn split_handles_share_state() {
        let h2 = Complex::new(-0.08, 0.06);
        let pair = NearFieldCoupling::new(H, h2, Separation::Constant(0.05));
        let expect0 = pair.coeff_of(0, 1.0);
        let expect1 = pair.coeff_of(1, 1.0);
        let (a, b) = pair.split();
        assert!(a.coeff_at(1.0).approx_eq(expect0, 0.0));
        assert!(b.coeff_at(1.0).approx_eq(expect1, 0.0));
    }
}
