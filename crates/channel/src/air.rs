//! Baseband signal synthesis — the "air" between tags and reader.
//!
//! Implements Eq. 2's model: the received signal is the linear combination
//! of every tag's reflection (its antenna state times its channel
//! coefficient), plus the environment reflection and receiver noise. Two
//! non-idealities the decoder depends on are modelled explicitly:
//!
//! * **Finite rise time** — "an edge is roughly 3 samples wide at the
//!   reader's sampling rate" (§2.4). Antenna toggles ramp linearly over
//!   [`AirConfig::edge_rise_samples`].
//! * **Slow coefficient drift** — channel coefficients are evaluated on a
//!   block grid ([`AirConfig::coeff_block`] samples) and held within each
//!   block. Fig. 1's processes move over seconds; a block at 25 Msps is
//!   tens of microseconds, so the staircase error is far below the noise
//!   floor while saving an expensive trig evaluation per sample per tag.

use crate::dynamics::CoeffProcess;
use crate::noise::Awgn;
use lf_types::{Complex, SampleRate};

/// One antenna-state change of a tag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToggleEvent {
    /// The time of the toggle in (fractional) samples from capture start.
    pub time: f64,
    /// The new antenna state the tag ramps to (1.0 = reflecting, 0.0 =
    /// absorbing). Intermediate values model partially-tuned states.
    pub level: f64,
}

/// A tag as the air sees it: a toggle-event stream plus a channel
/// coefficient process.
pub struct TagAir {
    /// Antenna state changes, sorted by time, at least
    /// `edge_rise_samples` apart (tags physically cannot toggle faster
    /// than their RF transistor settles).
    pub events: Vec<ToggleEvent>,
    /// Antenna state before the first event.
    pub initial_level: f64,
    /// The tag's channel coefficient over time.
    pub process: Box<dyn CoeffProcess>,
}

impl std::fmt::Debug for TagAir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TagAir")
            .field("events", &self.events)
            .field("initial_level", &self.initial_level)
            .field("process", &"<dyn CoeffProcess>")
            .finish()
    }
}

/// Synthesis parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AirConfig {
    /// Receiver sample rate.
    pub sample_rate: SampleRate,
    /// Number of samples to synthesize.
    pub n_samples: usize,
    /// Width of an antenna-toggle ramp in samples (§2.4: ≈3 at 25 Msps).
    pub edge_rise_samples: f64,
    /// Constant environment reflection added to every sample (§2.3 treats
    /// it as "a constant … an offset").
    pub env_reflection: Complex,
    /// Per-component AWGN sigma.
    pub noise_sigma: f64,
    /// Noise seed.
    pub seed: u64,
    /// Samples per channel-coefficient evaluation block.
    pub coeff_block: usize,
}

impl AirConfig {
    /// A config with the paper's reader parameters: 25 Msps, 3-sample
    /// edges, a small environment reflection, and the given capture length.
    pub fn paper_default(n_samples: usize) -> Self {
        AirConfig {
            sample_rate: SampleRate::USRP_N210,
            n_samples,
            edge_rise_samples: 3.0,
            env_reflection: Complex::new(0.4, -0.25),
            noise_sigma: 0.0,
            seed: 0,
            coeff_block: 1024,
        }
    }
}

/// Synthesizes the received IQ stream for a set of tags.
///
/// Panics if any tag's events are unsorted — that indicates a broken tag
/// model upstream, not a runtime condition to recover from.
pub fn synthesize(cfg: &AirConfig, tags: &[TagAir]) -> Vec<Complex> {
    let mut signal = vec![cfg.env_reflection; cfg.n_samples];
    let rise = cfg.edge_rise_samples.max(1e-9);
    let block = cfg.coeff_block.max(1);

    for tag in tags {
        debug_assert!(
            tag.events.windows(2).all(|w| w[0].time <= w[1].time),
            "toggle events must be sorted by time"
        );
        let mut level_before = tag.initial_level; // level before current event
        let mut ev_idx = 0usize;
        let mut t = 0usize;
        while t < cfg.n_samples {
            let block_end = (t + block).min(cfg.n_samples);
            let h = tag
                .process
                .coeff_at(cfg.sample_rate.time_of(t as f64).secs());
            for (s, sample) in signal[t..block_end].iter_mut().enumerate() {
                let ts = (t + s) as f64;
                // Retire events whose ramp has fully completed.
                while ev_idx < tag.events.len() && tag.events[ev_idx].time + rise <= ts {
                    level_before = tag.events[ev_idx].level;
                    ev_idx += 1;
                }
                let state = if ev_idx < tag.events.len() && tag.events[ev_idx].time <= ts {
                    // Inside the ramp of the current event.
                    let ev = tag.events[ev_idx];
                    let frac = ((ts - ev.time) / rise).clamp(0.0, 1.0);
                    level_before + (ev.level - level_before) * frac
                } else {
                    level_before
                };
                if state != 0.0 {
                    *sample += h.scale(state);
                }
            }
            t = block_end;
        }
    }

    let mut noise = Awgn::new(cfg.noise_sigma, cfg.seed);
    noise.corrupt(&mut signal);
    signal
}

/// Builds the toggle-event stream of an NRZ bit sequence: bit `k` occupies
/// `[offset + k·period, offset + (k+1)·period)` samples, the antenna level
/// is the bit value, and an event is emitted at each boundary where the
/// level changes (including the initial rise for a leading 1 bit).
/// `timing_error(k)` lets the caller inject per-boundary clock error in
/// samples (drift and jitter — the tag-model crate supplies it).
pub fn nrz_events<F: Fn(usize) -> f64>(
    bits: &[bool],
    offset: f64,
    period: f64,
    timing_error: F,
) -> Vec<ToggleEvent> {
    let mut events = Vec::new();
    let mut level = false;
    for (k, &b) in bits.iter().enumerate() {
        if b != level {
            events.push(ToggleEvent {
                time: offset + k as f64 * period + timing_error(k),
                level: b as u8 as f64,
            });
            level = b;
        }
    }
    // Return to absorbing state after the last bit so the frame has a
    // defined end.
    if level {
        events.push(ToggleEvent {
            time: offset + bits.len() as f64 * period + timing_error(bits.len()),
            level: 0.0,
        });
    }
    events
}

#[cfg(test)]
mod tests {
    // Tests assert bit-exact values deliberately: the event times under
    // test must be exact, not approximate.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::dynamics::StaticChannel;

    const H: Complex = Complex { re: 0.1, im: 0.05 };

    fn one_tag(events: Vec<ToggleEvent>, n: usize) -> Vec<Complex> {
        let mut cfg = AirConfig::paper_default(n);
        cfg.sample_rate = SampleRate::from_msps(1.0);
        let tags = [TagAir {
            events,
            initial_level: 0.0,
            process: Box::new(StaticChannel(H)),
        }];
        synthesize(&cfg, &tags)
    }

    #[test]
    fn idle_tag_leaves_only_environment() {
        let sig = one_tag(vec![], 100);
        let env = AirConfig::paper_default(0).env_reflection;
        assert!(sig.iter().all(|&z| z.approx_eq(env, 1e-12)));
    }

    #[test]
    fn reflecting_tag_adds_its_coefficient() {
        let sig = one_tag(
            vec![ToggleEvent {
                time: 10.0,
                level: 1.0,
            }],
            100,
        );
        let env = AirConfig::paper_default(0).env_reflection;
        // Before the edge: environment only.
        assert!(sig[5].approx_eq(env, 1e-12));
        // Well after the 3-sample ramp: env + h.
        assert!(sig[50].approx_eq(env + H, 1e-12));
    }

    #[test]
    fn ramp_is_linear_over_rise_time() {
        let sig = one_tag(
            vec![ToggleEvent {
                time: 10.0,
                level: 1.0,
            }],
            100,
        );
        let env = AirConfig::paper_default(0).env_reflection;
        // At exactly t=10 the ramp starts (0), t=11.5 half, t=13 complete.
        assert!(sig[10].approx_eq(env, 1e-12));
        let mid = sig[11] - env;
        assert!((mid.abs() - H.abs() / 3.0).abs() < 1e-9, "1/3 through ramp");
        assert!(sig[13].approx_eq(env + H, 1e-12));
    }

    #[test]
    fn toggle_off_returns_to_environment() {
        let sig = one_tag(
            vec![
                ToggleEvent {
                    time: 10.0,
                    level: 1.0,
                },
                ToggleEvent {
                    time: 50.0,
                    level: 0.0,
                },
            ],
            100,
        );
        let env = AirConfig::paper_default(0).env_reflection;
        assert!(sig[40].approx_eq(env + H, 1e-12));
        assert!(sig[60].approx_eq(env, 1e-12));
    }

    #[test]
    fn two_tags_combine_linearly() {
        let h2 = Complex::new(-0.07, 0.02);
        let mut cfg = AirConfig::paper_default(100);
        cfg.sample_rate = SampleRate::from_msps(1.0);
        let tags = [
            TagAir {
                events: vec![ToggleEvent {
                    time: 10.0,
                    level: 1.0,
                }],
                initial_level: 0.0,
                process: Box::new(StaticChannel(H)),
            },
            TagAir {
                events: vec![ToggleEvent {
                    time: 20.0,
                    level: 1.0,
                }],
                initial_level: 0.0,
                process: Box::new(StaticChannel(h2)),
            },
        ];
        let sig = synthesize(&cfg, &tags);
        let env = cfg.env_reflection;
        assert!(sig[15].approx_eq(env + H, 1e-12));
        assert!(sig[50].approx_eq(env + H + h2, 1e-12));
    }

    #[test]
    fn noise_is_added_when_configured() {
        let mut cfg = AirConfig::paper_default(1000);
        cfg.noise_sigma = 0.05;
        cfg.seed = 3;
        let sig = synthesize(&cfg, &[]);
        let env = cfg.env_reflection;
        let rms =
            (sig.iter().map(|z| (*z - env).norm_sqr()).sum::<f64>() / sig.len() as f64).sqrt();
        assert!((rms - 0.05 * std::f64::consts::SQRT_2).abs() < 0.01);
    }

    #[test]
    fn nrz_events_basic() {
        // Bits 1,0,0,1 from idle-low: rise at 0, fall at P, rise at 3P,
        // trailing fall at 4P.
        let ev = nrz_events(&[true, false, false, true], 100.0, 10.0, |_| 0.0);
        assert_eq!(
            ev,
            vec![
                ToggleEvent {
                    time: 100.0,
                    level: 1.0
                },
                ToggleEvent {
                    time: 110.0,
                    level: 0.0
                },
                ToggleEvent {
                    time: 130.0,
                    level: 1.0
                },
                ToggleEvent {
                    time: 140.0,
                    level: 0.0
                },
            ]
        );
    }

    #[test]
    fn nrz_events_all_zero_bits_produce_nothing() {
        assert!(nrz_events(&[false, false], 0.0, 10.0, |_| 0.0).is_empty());
    }

    #[test]
    fn nrz_timing_error_is_applied() {
        let ev = nrz_events(&[true], 0.0, 10.0, |k| k as f64 + 0.5);
        assert_eq!(ev[0].time, 0.5);
        assert_eq!(ev[1].time, 11.5);
    }

    #[test]
    fn initial_level_high_supported() {
        let mut cfg = AirConfig::paper_default(20);
        cfg.sample_rate = SampleRate::from_msps(1.0);
        let tags = [TagAir {
            events: vec![],
            initial_level: 1.0,
            process: Box::new(StaticChannel(H)),
        }];
        let sig = synthesize(&cfg, &tags);
        assert!(sig[0].approx_eq(cfg.env_reflection + H, 1e-12));
    }
}
