//! Per-tag channel coefficients from placement.
//!
//! Each tag reflects the carrier with a complex coefficient `h` (Eq. 1)
//! whose magnitude follows the link budget and whose phase depends on the
//! round-trip path length — effectively uniform random over deployments.
//! The *relative geometry* of different tags' coefficients in the IQ plane
//! is what makes cluster separation possible (§3.4) or hard (nearly
//! parallel coefficients — Table 2's failure cases).

use crate::linkbudget::LinkBudget;
use lf_types::Complex;
use rand::Rng;

/// Where a tag sits relative to the reader.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TagPlacement {
    /// Reader–tag distance in metres.
    pub distance_m: f64,
    /// Phase of the backscatter path in radians. `None` means "draw
    /// uniformly" when the coefficient is realized.
    pub phase_rad: Option<f64>,
}

impl TagPlacement {
    /// A tag at `distance_m` with a random path phase.
    pub fn at_distance(distance_m: f64) -> Self {
        TagPlacement {
            distance_m,
            phase_rad: None,
        }
    }

    /// A tag with fully specified geometry.
    pub fn with_phase(distance_m: f64, phase_rad: f64) -> Self {
        TagPlacement {
            distance_m,
            phase_rad: Some(phase_rad),
        }
    }

    /// Realizes the complex channel coefficient for this placement.
    ///
    /// The magnitude is the *amplitude* ratio implied by the link budget's
    /// received power, normalized so that a tag at
    /// [`reference_distance`](Self::realize) has magnitude
    /// `reference_amplitude`. Working in normalized amplitude keeps the
    /// synthesized IQ streams numerically comfortable (order 0.01–1) while
    /// preserving every relative relationship the decoder sees.
    pub fn realize<R: Rng>(
        &self,
        budget: &LinkBudget,
        reference_distance: f64,
        reference_amplitude: f64,
        rng: &mut R,
    ) -> Complex {
        let power_db = budget.received_power_dbm(self.distance_m)
            - budget.received_power_dbm(reference_distance);
        let amplitude = reference_amplitude * 10f64.powf(power_db / 20.0);
        let phase = self
            .phase_rad
            .unwrap_or_else(|| rng.gen_range(0.0..std::f64::consts::TAU));
        Complex::from_polar(amplitude, phase)
    }
}

/// Realizes coefficients for a set of placements with one RNG pass.
pub fn realize_all<R: Rng>(
    placements: &[TagPlacement],
    budget: &LinkBudget,
    reference_distance: f64,
    reference_amplitude: f64,
    rng: &mut R,
) -> Vec<Complex> {
    placements
        .iter()
        .map(|p| p.realize(budget, reference_distance, reference_amplitude, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reference_tag_has_reference_amplitude() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = TagPlacement::with_phase(2.0, 0.0);
        let h = p.realize(&LinkBudget::paper_default(), 2.0, 0.1, &mut rng);
        assert!(h.approx_eq(Complex::new(0.1, 0.0), 1e-12));
    }

    #[test]
    fn farther_tags_are_weaker_by_d4_in_power() {
        let mut rng = StdRng::seed_from_u64(2);
        let budget = LinkBudget::paper_default();
        let near = TagPlacement::with_phase(1.0, 0.0).realize(&budget, 1.0, 1.0, &mut rng);
        let far = TagPlacement::with_phase(2.0, 0.0).realize(&budget, 1.0, 1.0, &mut rng);
        // Amplitude ratio = (d1/d2)² for a d⁻⁴ power law.
        assert!((near.abs() / far.abs() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn random_phase_is_seed_deterministic() {
        let budget = LinkBudget::paper_default();
        let p = TagPlacement::at_distance(2.0);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let ha = p.realize(&budget, 2.0, 0.1, &mut a);
        let hb = p.realize(&budget, 2.0, 0.1, &mut b);
        assert!(ha.approx_eq(hb, 0.0));
    }

    #[test]
    fn realize_all_matches_individual() {
        let budget = LinkBudget::paper_default();
        let ps = [
            TagPlacement::with_phase(1.5, 0.3),
            TagPlacement::with_phase(2.5, -1.0),
        ];
        let mut rng = StdRng::seed_from_u64(3);
        let hs = realize_all(&ps, &budget, 2.0, 0.1, &mut rng);
        assert_eq!(hs.len(), 2);
        assert!(hs[0].abs() > hs[1].abs());
    }
}
