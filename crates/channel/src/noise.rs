//! Complex additive white Gaussian noise and SNR bookkeeping.
//!
//! `rand` (the one RNG crate in our offline dependency set) provides
//! uniform sampling only, so Gaussian variates are produced with the
//! Box–Muller transform. Noise is always seeded: every experiment in the
//! harness is reproducible run-to-run.

use lf_types::Complex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded complex AWGN source with per-component standard deviation
/// `sigma`.
#[derive(Debug, Clone)]
pub struct Awgn {
    sigma: f64,
    rng: StdRng,
    /// Box–Muller produces pairs; cache the spare variate.
    spare: Option<f64>,
}

impl Awgn {
    /// Creates a source with per-component (I and Q separately) standard
    /// deviation `sigma`. `sigma == 0` produces exact zeros (noise-free
    /// runs for decoder unit tests).
    pub fn new(sigma: f64, seed: u64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be >= 0");
        Awgn {
            sigma,
            rng: StdRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Per-component standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller.
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..std::f64::consts::TAU);
        let r = (-2.0 * u1.ln()).sqrt();
        self.spare = Some(r * u2.sin());
        r * u2.cos()
    }

    /// Draws one complex noise sample.
    pub fn sample(&mut self) -> Complex {
        if self.sigma == 0.0 {
            return Complex::ZERO;
        }
        Complex::new(
            self.sigma * self.standard_normal(),
            self.sigma * self.standard_normal(),
        )
    }

    /// Adds noise in place to a signal buffer.
    pub fn corrupt(&mut self, signal: &mut [Complex]) {
        if self.sigma == 0.0 {
            return;
        }
        for s in signal {
            *s += self.sample();
        }
    }
}

/// The per-component noise sigma that yields `snr_db` for a signal of
/// amplitude `signal_amplitude`, under the convention
/// `SNR = |signal|² / E[|noise|²] = A² / (2σ²)`.
pub fn sigma_for_snr(signal_amplitude: f64, snr_db: f64) -> f64 {
    let snr = 10f64.powf(snr_db / 10.0);
    signal_amplitude / (2.0 * snr).sqrt()
}

/// The SNR in dB for a signal amplitude and per-component sigma (inverse of
/// [`sigma_for_snr`]).
pub fn snr_db_for_sigma(signal_amplitude: f64, sigma: f64) -> f64 {
    assert!(sigma > 0.0, "sigma must be positive to compute SNR");
    10.0 * (signal_amplitude * signal_amplitude / (2.0 * sigma * sigma)).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_noise_is_reproducible() {
        let mut a = Awgn::new(0.3, 42);
        let mut b = Awgn::new(0.3, 42);
        for _ in 0..100 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Awgn::new(0.3, 1);
        let mut b = Awgn::new(0.3, 2);
        let same = (0..32).filter(|_| a.sample() == b.sample()).count();
        assert!(same < 2);
    }

    #[test]
    fn zero_sigma_is_silent() {
        let mut n = Awgn::new(0.0, 5);
        assert_eq!(n.sample(), Complex::ZERO);
        let mut buf = vec![Complex::ONE; 8];
        n.corrupt(&mut buf);
        assert!(buf.iter().all(|&z| z == Complex::ONE));
    }

    #[test]
    fn moments_are_right() {
        let mut n = Awgn::new(0.5, 7);
        let samples: Vec<Complex> = (0..200_000).map(|_| n.sample()).collect();
        let mean = Complex::mean(&samples);
        assert!(mean.abs() < 0.01, "mean {mean} not near zero");
        let var_i: f64 = samples.iter().map(|z| z.re * z.re).sum::<f64>() / samples.len() as f64;
        let var_q: f64 = samples.iter().map(|z| z.im * z.im).sum::<f64>() / samples.len() as f64;
        assert!((var_i - 0.25).abs() < 0.01, "I variance {var_i}");
        assert!((var_q - 0.25).abs() < 0.01, "Q variance {var_q}");
    }

    #[test]
    fn snr_round_trip() {
        for snr in [0.0, 5.0, 10.0, 20.0] {
            let sigma = sigma_for_snr(0.1, snr);
            assert!((snr_db_for_sigma(0.1, sigma) - snr).abs() < 1e-9);
        }
    }

    #[test]
    fn higher_snr_means_less_noise() {
        assert!(sigma_for_snr(1.0, 20.0) < sigma_for_snr(1.0, 10.0));
    }

    #[test]
    fn corrupt_changes_signal_at_expected_scale() {
        let mut n = Awgn::new(0.1, 9);
        let mut buf = vec![Complex::ZERO; 10_000];
        n.corrupt(&mut buf);
        let rms = (buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / buf.len() as f64).sqrt();
        // E[|z|²] = 2σ² → rms ≈ σ√2 ≈ 0.1414.
        assert!((rms - 0.1414).abs() < 0.01, "rms {rms}");
    }
}
