//! Radar-equation link budget (§5.4).
//!
//! The paper uses "the classical radar equation used to determine
//! backscatter link budget":
//!
//! ```text
//! Pr = Pt · Gt² · (λ / 4πd)⁴ · Gtag² · K
//! ```
//!
//! where `Pr` is the received power at the reader, `Pt` the transmit power,
//! `Gt` the reader antenna gain, `λ` the wavelength, `d` the reader–tag
//! distance, `Gtag` the tag antenna gain, and `K` the tag's modulation
//! loss. Backscatter power falls as d⁻⁴ (round trip), which is why a 4 dB
//! SNR penalty costs only a factor of 10^(4/40) ≈ 1.26 in range.

use lf_types::units::{dbm_to_watts, feet_to_meters, meters_to_feet, watts_to_dbm, wavelength};

/// Parameters of a backscatter link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkBudget {
    /// Reader transmit power in dBm.
    pub tx_power_dbm: f64,
    /// Reader antenna gain in dBi (applied on both transmit and receive).
    pub reader_gain_dbi: f64,
    /// Tag antenna gain in dBi (applied on both absorb and re-radiate).
    pub tag_gain_dbi: f64,
    /// Tag modulation loss `K` in dB (negative quantity expressed as loss,
    /// e.g. 6.0 means the tag reflects 6 dB below ideal).
    pub modulation_loss_db: f64,
    /// Carrier frequency in Hz.
    pub carrier_hz: f64,
    /// Receiver noise floor in dBm (thermal + NF over the capture
    /// bandwidth).
    pub noise_floor_dbm: f64,
}

impl LinkBudget {
    /// A representative UHF RFID setup matching the paper's hardware: USRP
    /// N210 with ~20 dBm output, 6 dBi Cushcraft S9028 antennas, 915 MHz
    /// carrier, a typical 6 dB tag modulation loss, and a −90 dBm effective
    /// noise floor over the capture bandwidth.
    pub fn paper_default() -> Self {
        LinkBudget {
            tx_power_dbm: 20.0,
            reader_gain_dbi: 6.0,
            tag_gain_dbi: 2.0,
            modulation_loss_db: 6.0,
            carrier_hz: 915e6,
            noise_floor_dbm: -90.0,
        }
    }

    /// Received backscatter power (dBm) at reader–tag distance `d` metres.
    pub fn received_power_dbm(&self, d: f64) -> f64 {
        assert!(d > 0.0, "distance must be positive");
        let lambda = wavelength(self.carrier_hz);
        let path = (lambda / (4.0 * std::f64::consts::PI * d)).powi(4);
        let pr_watts = dbm_to_watts(self.tx_power_dbm)
            * 10f64.powf(2.0 * self.reader_gain_dbi / 10.0)
            * path
            * 10f64.powf(2.0 * self.tag_gain_dbi / 10.0)
            * 10f64.powf(-self.modulation_loss_db / 10.0);
        watts_to_dbm(pr_watts)
    }

    /// SNR (dB) of the backscattered signal at distance `d` metres.
    pub fn snr_db(&self, d: f64) -> f64 {
        self.received_power_dbm(d) - self.noise_floor_dbm
    }

    /// The distance at which the link achieves `snr_db`. Inverts the d⁻⁴
    /// law analytically.
    pub fn range_for_snr(&self, snr_db: f64) -> f64 {
        // snr(d) = snr(1m) − 40·log10(d)  ⇒  d = 10^((snr(1m) − snr)/40)
        let snr_at_1m = self.snr_db(1.0);
        10f64.powf((snr_at_1m - snr_db) / 40.0)
    }

    /// §5.4's range conversion: given a scheme works at `range` with some
    /// required SNR, a scheme needing `extra_snr_db` more SNR works at
    /// `range · 10^(−extra/40)` under the d⁻⁴ radar equation.
    pub fn equivalent_range(range: f64, extra_snr_db: f64) -> f64 {
        range * 10f64.powf(-extra_snr_db / 40.0)
    }

    /// §5.4's worked example in feet: a tag with a working range of
    /// `range_ft` under ASK has this working range under LF-Backscatter's
    /// `extra_snr_db` (≈4 dB) requirement.
    pub fn equivalent_range_feet(range_ft: f64, extra_snr_db: f64) -> f64 {
        meters_to_feet(Self::equivalent_range(
            feet_to_meters(range_ft),
            extra_snr_db,
        ))
    }
}

#[cfg(test)]
mod tests {
    // Tests assert bit-exact values deliberately: the conversions under
    // test must be exact, not approximate.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn power_falls_with_fourth_power_of_distance() {
        let lb = LinkBudget::paper_default();
        let p1 = lb.received_power_dbm(1.0);
        let p2 = lb.received_power_dbm(2.0);
        // Doubling distance costs 40·log10(2) ≈ 12.04 dB.
        assert!((p1 - p2 - 12.0412).abs() < 1e-3);
    }

    #[test]
    fn snr_matches_power_minus_floor() {
        let lb = LinkBudget::paper_default();
        assert!((lb.snr_db(2.0) - (lb.received_power_dbm(2.0) + 90.0)).abs() < 1e-12);
    }

    #[test]
    fn range_for_snr_inverts_snr() {
        let lb = LinkBudget::paper_default();
        for snr in [5.0, 10.0, 20.0, 30.0] {
            let d = lb.range_for_snr(snr);
            assert!((lb.snr_db(d) - snr).abs() < 1e-9, "snr {snr} → d {d}");
        }
    }

    #[test]
    fn paper_equivalent_ranges() {
        // §5.4: "if a tag has a working range of 10ft with ASK, it will
        // have an equivalent range of 8.1ft with LF-Backscatter.
        // Similarly, LF-Backscatter will have a working range of 23.7ft if
        // a tag works 30ft with ASK." (4 dB gap)
        // Note: the paper's two examples are internally inconsistent —
        // 8.1/10 implies a 3.66 dB gap while 23.7/30 implies 4.09 dB. With
        // exactly 4 dB the d⁻⁴ law gives 7.94 ft and 23.83 ft; we accept
        // the paper's rounding with a ±0.2 ft tolerance.
        let r10 = LinkBudget::equivalent_range_feet(10.0, 4.0);
        assert!((r10 - 8.1).abs() < 0.2, "got {r10}");
        let r30 = LinkBudget::equivalent_range_feet(30.0, 4.0);
        assert!((r30 - 23.7).abs() < 0.2, "got {r30}");
    }

    #[test]
    fn zero_gap_preserves_range() {
        assert_eq!(LinkBudget::equivalent_range(7.0, 0.0), 7.0);
    }

    #[test]
    fn reasonable_absolute_numbers() {
        // At 2 m (the evaluation's deployment distance) the link should be
        // comfortably decodable: SNR well above 15 dB (where Fig. 14 says
        // BER → 0), and received power in a plausible backscatter regime.
        let lb = LinkBudget::paper_default();
        let snr = lb.snr_db(2.0);
        assert!(snr > 15.0, "2 m SNR too low: {snr}");
        let p = lb.received_power_dbm(2.0);
        assert!(p < -30.0 && p > -80.0, "implausible rx power {p} dBm");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_distance_rejected() {
        let _ = LinkBudget::paper_default().received_power_dbm(0.0);
    }
}
