//! Deliberately-seeded concurrency bugs (and their corrected twins).
//!
//! These are the harness's own acceptance tests: each buggy fixture
//! encodes a classic interleaving error that *must* be found within the
//! default bounds, and each corrected twin must exhaust its schedule
//! space cleanly. If a scheduler change ever stops finding one of these,
//! the `lf-check` self-test suite fails — the model suite's "it passed"
//! is only meaningful while "it can fail" is proven.

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use crate::thread;
use std::sync::Arc;

fn recover<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// The canonical lost update: two threads each do a non-atomic
/// read-modify-write (`load` then `store`) on a shared counter. A
/// schedule where both load before either stores loses an increment.
pub fn lost_update_round() {
    let c = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let c = Arc::clone(&c);
            thread::spawn(move || {
                // ordering: SeqCst — irrelevant here; the bug is the
                // non-atomic read-modify-write, not the memory order.
                let v = c.load(Ordering::SeqCst);
                c.store(v + 1, Ordering::SeqCst);
            })
        })
        .collect();
    for w in workers {
        let _ = w.join();
    }
    // ordering: SeqCst — single-threaded by now; any order reads the total.
    assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
}

/// The corrected twin of [`lost_update_round`]: the read-modify-write is
/// a single `fetch_add`, correct under every interleaving.
pub fn atomic_update_round() {
    let c = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let c = Arc::clone(&c);
            thread::spawn(move || {
                // ordering: SeqCst — the model is sequentially consistent
                // anyway; the point is the atomicity of the RMW.
                c.fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();
    for w in workers {
        let _ = w.join();
    }
    // ordering: SeqCst — single-threaded by now.
    assert_eq!(c.load(Ordering::SeqCst), 2, "atomic update lost");
}

/// Shared one-slot mailbox for the condvar fixtures.
#[derive(Debug, Default)]
struct Mailbox {
    items: Mutex<Vec<u32>>,
    ready: Condvar,
}

/// The classic `if`-instead-of-`while` condvar bug: two consumers wait
/// with a single predicate check, the producer deposits one item and
/// calls `notify_all`. The woken consumer that loses the race to the
/// item proceeds anyway — its `if` never re-checks — and pops nothing.
pub fn if_wait_round() {
    let mb = Arc::new(Mailbox::default());
    let consumers: Vec<_> = (0..2)
        .map(|_| {
            let mb = Arc::clone(&mb);
            thread::spawn(move || {
                let mut items = recover(mb.items.lock());
                if items.is_empty() {
                    // xtask: allow(no-condvar-without-timeout-loop) — this
                    // fixture deliberately seeds the bug the rule forbids.
                    items = recover(mb.ready.wait(items));
                }
                assert!(items.pop().is_some(), "woke without an item");
            })
        })
        .collect();
    let producer = {
        let mb = Arc::clone(&mb);
        thread::spawn(move || {
            recover(mb.items.lock()).push(7);
            mb.ready.notify_all();
        })
    };
    let _ = producer.join();
    for c in consumers {
        let _ = c.join();
    }
}

/// The corrected twin of [`if_wait_round`]: consumers loop on the
/// predicate, and the producer deposits one item per consumer, so every
/// wakeup (direct or raced) re-checks and eventually succeeds.
pub fn while_wait_round() {
    let mb = Arc::new(Mailbox::default());
    let consumers: Vec<_> = (0..2)
        .map(|_| {
            let mb = Arc::clone(&mb);
            thread::spawn(move || {
                let mut items = recover(mb.items.lock());
                while items.is_empty() {
                    items = recover(mb.ready.wait(items));
                }
                assert!(items.pop().is_some(), "woke without an item");
            })
        })
        .collect();
    let producer = {
        let mb = Arc::clone(&mb);
        thread::spawn(move || {
            for _ in 0..2 {
                recover(mb.items.lock()).push(7);
                mb.ready.notify_all();
            }
        })
    };
    let _ = producer.join();
    for c in consumers {
        let _ = c.join();
    }
}

/// A two-lock ordering inversion: thread A takes `first` then `second`,
/// thread B takes `second` then `first`. Some schedule interleaves the
/// acquisitions and deadlocks — which the model reports as a failure
/// instead of hanging.
pub fn lock_inversion_round() {
    let first = Arc::new(Mutex::new(0u32));
    let second = Arc::new(Mutex::new(0u32));
    let a = {
        let (first, second) = (Arc::clone(&first), Arc::clone(&second));
        thread::spawn(move || {
            let _f = recover(first.lock());
            let _s = recover(second.lock());
        })
    };
    let b = {
        let (first, second) = (Arc::clone(&first), Arc::clone(&second));
        thread::spawn(move || {
            let _s = recover(second.lock());
            let _f = recover(first.lock());
        })
    };
    let _ = a.join();
    let _ = b.join();
}
