//! The cooperative scheduler and its depth-first schedule driver.
//!
//! One *execution* runs the model closure with real OS threads, but only
//! one thread ever holds the token: every shim operation calls back in
//! here, and the scheduler decides who runs next. Each decision among
//! `n > 1` runnable threads is recorded as `(chosen, n)`; replaying a
//! recorded prefix and flipping the last non-exhausted choice walks the
//! whole bounded decision tree depth-first. Blocked threads (lock wait,
//! condvar park, join) are simply not candidates, and an execution where
//! nothing is runnable but not everything is finished is reported as a
//! deadlock — with the decision vector that drove it there.

use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Bounds on one model run.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Hard cap on executions explored (a safety valve against a model
    /// closure with an unexpectedly large schedule space, not a target).
    pub max_iterations: usize,
    /// CHESS-style preemption budget: how many times per execution the
    /// scheduler may switch *away* from a thread that could have kept
    /// running. Voluntary blocking never spends budget. Empirically a
    /// budget of 2 reaches the overwhelming majority of real
    /// interleaving bugs while keeping the space polynomial.
    pub max_preemptions: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            max_iterations: 50_000,
            max_preemptions: 2,
        }
    }
}

/// A schedule that failed: an assertion fired, a model thread panicked,
/// or the threads deadlocked.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The panic payload (or a deadlock description).
    pub message: String,
    /// The decision vector that reproduces the failing schedule.
    pub schedule: Vec<usize>,
    /// 1-based execution number that failed.
    pub iteration: usize,
}

/// The outcome of a model run.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Executions performed.
    pub iterations: usize,
    /// Whether the bounded schedule space was fully enumerated (false if
    /// the run stopped on a failure or at `max_iterations`).
    pub exhausted: bool,
    /// The first failing schedule, if any; exploration stops on it.
    pub failure: Option<Failure>,
}

/// What a model thread is doing, from the scheduler's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Waiting to acquire the shim lock with this id.
    Lock(usize),
    /// Parked on the shim condvar with this id.
    Cv(usize),
    /// Waiting for the thread with this id to finish.
    Join(usize),
    Finished,
}

#[derive(Debug)]
struct ExecState {
    statuses: Vec<Status>,
    running: Option<usize>,
    lock_owner: Vec<Option<usize>>,
    n_cvs: usize,
    /// Decisions made this execution: `(chosen index, candidate count)`.
    trace: Vec<(usize, usize)>,
    /// Decision prefix to replay (from the depth-first driver).
    replay: Vec<usize>,
    step: usize,
    preemptions: usize,
    abort: bool,
    failure: Option<String>,
    /// OS threads registered and not yet exited.
    live: usize,
}

/// One execution's scheduler. Shared by every model thread via `Arc`.
#[derive(Debug)]
pub(crate) struct Exec {
    state: Mutex<ExecState>,
    cv: Condvar,
    max_preemptions: usize,
}

/// The harness itself must survive a model thread dying while it holds
/// the scheduler lock: recover from poisoning (the scheduler state stays
/// consistent between operations by construction).
fn recover<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Panic payload used to tear surviving threads down after a failure;
/// distinguishable from a real model-code panic.
struct AbortToken;

fn abort_unwind() -> ! {
    std::panic::resume_unwind(Box::new(AbortToken))
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Exec>, usize)>> = const { RefCell::new(None) };
}

/// The scheduler driving the current thread, if it is a model thread.
pub(crate) fn current() -> Option<(Arc<Exec>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

impl Exec {
    fn new(max_preemptions: usize, replay: Vec<usize>) -> Self {
        Exec {
            state: Mutex::new(ExecState {
                statuses: Vec::new(),
                running: None,
                lock_owner: Vec::new(),
                n_cvs: 0,
                trace: Vec::new(),
                replay,
                step: 0,
                preemptions: 0,
                abort: false,
                failure: None,
                live: 0,
            }),
            cv: Condvar::new(),
            max_preemptions,
        }
    }

    fn st(&self) -> MutexGuard<'_, ExecState> {
        recover(self.state.lock())
    }

    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.st();
        st.statuses.push(Status::Runnable);
        st.live += 1;
        st.statuses.len() - 1
    }

    pub(crate) fn new_lock(&self) -> usize {
        let mut st = self.st();
        st.lock_owner.push(None);
        st.lock_owner.len() - 1
    }

    pub(crate) fn new_cv(&self) -> usize {
        let mut st = self.st();
        st.n_cvs += 1;
        st.n_cvs - 1
    }

    /// Records one decision among `n` candidates, consulting the replay
    /// prefix first. Forced single-candidate steps are not recorded: they
    /// are deterministic, so they add nothing to the decision tree.
    fn choose(&self, st: &mut ExecState, n: usize) -> usize {
        let idx = if st.step < st.replay.len() {
            st.replay[st.step].min(n - 1)
        } else {
            0
        };
        st.trace.push((idx, n));
        st.step += 1;
        idx
    }

    /// Picks the next thread to run. The caller has already set `from`'s
    /// new status (still `Runnable` for a plain yield, blocked or
    /// finished otherwise). Never blocks; `from` waits for the token
    /// afterwards if it stays alive.
    fn schedule(&self, st: &mut ExecState, from: usize) {
        if st.abort {
            self.cv.notify_all();
            return;
        }
        let from_runnable = st.statuses[from] == Status::Runnable;
        let candidates: Vec<usize> = (0..st.statuses.len())
            .filter(|&t| st.statuses[t] == Status::Runnable)
            .collect();
        if candidates.is_empty() {
            if st.statuses.iter().all(|&s| s == Status::Finished) {
                st.running = None;
                self.cv.notify_all();
                return;
            }
            let waiting: Vec<String> = st
                .statuses
                .iter()
                .enumerate()
                .filter(|(_, s)| !matches!(s, Status::Finished))
                .map(|(t, s)| format!("t{t}:{s:?}"))
                .collect();
            if st.failure.is_none() {
                st.failure = Some(format!(
                    "deadlock: no runnable thread ({})",
                    waiting.join(", ")
                ));
            }
            st.abort = true;
            self.cv.notify_all();
            return;
        }
        // Preemption bounding: once the budget is spent, a thread that
        // could keep running does, and no choice point is recorded.
        let chosen = if from_runnable && st.preemptions >= self.max_preemptions {
            from
        } else {
            let n = candidates.len();
            let idx = if n == 1 { 0 } else { self.choose(st, n) };
            candidates[idx]
        };
        if from_runnable && chosen != from {
            st.preemptions += 1;
        }
        st.running = Some(chosen);
        self.cv.notify_all();
    }

    /// Blocks the calling model thread until it holds the token (or the
    /// execution is aborting, in which case it unwinds).
    fn wait_for_token<'a>(
        &'a self,
        mut st: MutexGuard<'a, ExecState>,
        tid: usize,
    ) -> MutexGuard<'a, ExecState> {
        loop {
            if st.abort {
                drop(st);
                abort_unwind();
            }
            if st.running == Some(tid) {
                return st;
            }
            st = recover(self.cv.wait(st));
        }
    }

    /// A plain scheduling point: the running thread offers the token.
    pub(crate) fn yield_point(&self, tid: usize) {
        let mut st = self.st();
        if st.abort {
            drop(st);
            abort_unwind();
        }
        self.schedule(&mut st, tid);
        let st = self.wait_for_token(st, tid);
        drop(st);
    }

    /// Acquires the shim lock `lock`, blocking (logically) while another
    /// thread owns it. Does not include the entry scheduling point; see
    /// the callers in `sync`.
    pub(crate) fn acquire(&self, lock: usize, tid: usize) {
        let mut st = self.st();
        loop {
            if st.abort {
                drop(st);
                abort_unwind();
            }
            if st.lock_owner[lock].is_none() {
                st.lock_owner[lock] = Some(tid);
                return;
            }
            st.statuses[tid] = Status::Lock(lock);
            self.schedule(&mut st, tid);
            st = self.wait_for_token(st, tid);
        }
    }

    /// Releases the shim lock `lock`, waking its waiters. Releasing is
    /// not itself a choice point: the waiters become runnable and compete
    /// at the next scheduling point.
    pub(crate) fn release(&self, lock: usize, _tid: usize) {
        let mut st = self.st();
        st.lock_owner[lock] = None;
        for t in 0..st.statuses.len() {
            if st.statuses[t] == Status::Lock(lock) {
                st.statuses[t] = Status::Runnable;
            }
        }
    }

    /// Parks the calling thread on condvar `cv`. The caller has already
    /// released the associated lock *without an intervening scheduling
    /// point*, so no wakeup can be lost between release and park.
    pub(crate) fn cv_park(&self, cv: usize, tid: usize) {
        let mut st = self.st();
        if st.abort {
            drop(st);
            abort_unwind();
        }
        st.statuses[tid] = Status::Cv(cv);
        self.schedule(&mut st, tid);
        let st = self.wait_for_token(st, tid);
        drop(st);
    }

    /// Wakes one waiter of `cv` (a decision point when several wait).
    pub(crate) fn notify_one(&self, cv: usize, tid: usize) {
        self.yield_point(tid);
        let mut st = self.st();
        let waiters: Vec<usize> = (0..st.statuses.len())
            .filter(|&t| st.statuses[t] == Status::Cv(cv))
            .collect();
        if waiters.is_empty() {
            return;
        }
        let idx = if waiters.len() == 1 {
            0
        } else {
            self.choose(&mut st, waiters.len())
        };
        st.statuses[waiters[idx]] = Status::Runnable;
    }

    /// Wakes every waiter of `cv`.
    pub(crate) fn notify_all_waiters(&self, cv: usize, tid: usize) {
        self.yield_point(tid);
        let mut st = self.st();
        for t in 0..st.statuses.len() {
            if st.statuses[t] == Status::Cv(cv) {
                st.statuses[t] = Status::Runnable;
            }
        }
    }

    /// Blocks until the thread `target` has finished.
    pub(crate) fn join(&self, target: usize, tid: usize) {
        let mut st = self.st();
        loop {
            if st.abort {
                drop(st);
                abort_unwind();
            }
            if st.statuses[target] == Status::Finished {
                return;
            }
            st.statuses[tid] = Status::Join(target);
            self.schedule(&mut st, tid);
            st = self.wait_for_token(st, tid);
        }
    }

    /// Marks `tid` finished. A `Some` message records the first failure
    /// and aborts the execution; `None` passes the token on (waking any
    /// joiners) or detects end-of-execution/deadlock.
    fn finish(&self, tid: usize, panic_msg: Option<String>) {
        let mut st = self.st();
        st.statuses[tid] = Status::Finished;
        if let Some(msg) = panic_msg {
            if st.failure.is_none() {
                st.failure = Some(msg);
            }
            st.abort = true;
            self.cv.notify_all();
            return;
        }
        if st.abort {
            self.cv.notify_all();
            return;
        }
        for t in 0..st.statuses.len() {
            if st.statuses[t] == Status::Join(tid) {
                st.statuses[t] = Status::Runnable;
            }
        }
        self.schedule(&mut st, tid);
    }

    fn thread_exited(&self) {
        let mut st = self.st();
        st.live -= 1;
        self.cv.notify_all();
    }

    fn wait_all_exited(&self) {
        let mut st = self.st();
        while st.live > 0 {
            st = recover(self.cv.wait(st));
        }
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".to_owned()
    }
}

/// Runs `f` as model thread `tid` of `exec`: installs the thread-local
/// scheduler handle, waits for the token, runs `f`, and does the finish
/// bookkeeping whether `f` returns, asserts, or is torn down by an abort.
pub(crate) fn run_model_thread<T>(
    exec: &Arc<Exec>,
    tid: usize,
    f: impl FnOnce() -> T,
) -> Option<T> {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(exec), tid)));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let st = exec.st();
        let st = exec.wait_for_token(st, tid);
        drop(st);
        f()
    }));
    CTX.with(|c| *c.borrow_mut() = None);
    match result {
        Ok(v) => {
            exec.finish(tid, None);
            exec.thread_exited();
            Some(v)
        }
        Err(p) => {
            let msg = if p.is::<AbortToken>() {
                None
            } else {
                Some(panic_message(p.as_ref()))
            };
            exec.finish(tid, msg);
            exec.thread_exited();
            None
        }
    }
}

/// Depth-first advance: replay the prefix up to the last decision with an
/// untried branch, then take that branch. `None` when the space is done.
fn next_replay(trace: &[(usize, usize)]) -> Option<Vec<usize>> {
    let mut i = trace.len();
    while i > 0 {
        i -= 1;
        let (c, n) = trace[i];
        if c + 1 < n {
            let mut replay: Vec<usize> = trace[..i].iter().map(|&(c, _)| c).collect();
            replay.push(c + 1);
            return Some(replay);
        }
    }
    None
}

/// Explores every interleaving of `f` within `cfg`'s bounds and reports
/// the outcome without panicking. Use this to assert that a seeded bug
/// *is* found, or to inspect how many executions a model takes.
pub fn model_with(cfg: ModelConfig, f: impl Fn() + Send + Sync + 'static) -> ModelReport {
    let f = Arc::new(f);
    let mut replay: Vec<usize> = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let exec = Arc::new(Exec::new(cfg.max_preemptions, std::mem::take(&mut replay)));
        let root = exec.register_thread();
        {
            let mut st = exec.st();
            st.running = Some(root);
        }
        let e2 = Arc::clone(&exec);
        let g = Arc::clone(&f);
        let handle = std::thread::spawn(move || {
            run_model_thread(&e2, root, move || g());
        });
        exec.wait_all_exited();
        let _ = handle.join();
        let st = exec.st();
        if let Some(msg) = st.failure.clone() {
            let schedule = st.trace.iter().map(|&(c, _)| c).collect();
            return ModelReport {
                iterations,
                exhausted: false,
                failure: Some(Failure {
                    message: msg,
                    schedule,
                    iteration: iterations,
                }),
            };
        }
        let trace = st.trace.clone();
        drop(st);
        match next_replay(&trace) {
            Some(r) => replay = r,
            None => {
                return ModelReport {
                    iterations,
                    exhausted: true,
                    failure: None,
                }
            }
        }
        if iterations >= cfg.max_iterations {
            return ModelReport {
                iterations,
                exhausted: false,
                failure: None,
            };
        }
    }
}

/// Explores every interleaving of `f` within the default bounds and
/// fails the calling test if any schedule fails.
pub fn model(f: impl Fn() + Send + Sync + 'static) {
    let report = model_with(ModelConfig::default(), f);
    if let Some(failure) = &report.failure {
        assert!(
            report.failure.is_none(),
            "model failure on execution {} of {}: {} (schedule {:?})",
            failure.iteration,
            report.iterations,
            failure.message,
            failure.schedule,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_replay_walks_the_tree() {
        // Two binary decisions: 00 -> 01 -> 1? (second level re-chosen).
        assert_eq!(next_replay(&[(0, 2), (0, 2)]), Some(vec![0, 1]));
        assert_eq!(next_replay(&[(0, 2), (1, 2)]), Some(vec![1]));
        assert_eq!(next_replay(&[(1, 2), (1, 2)]), None);
        assert_eq!(next_replay(&[]), None);
    }

    #[test]
    fn straight_line_code_is_one_execution() {
        let report = model_with(ModelConfig::default(), || {
            let x = 1 + 1;
            assert_eq!(x, 2);
        });
        assert_eq!(report.iterations, 1);
        assert!(report.exhausted);
        assert!(report.failure.is_none());
    }
}
