//! Deterministic schedule exploration for the hand-rolled concurrency
//! primitives.
//!
//! The runtime rests on three hand-rolled concurrent structures — the
//! `BoundedQueue` MPMC, the sharded atomic `MetricsRegistry`, and the
//! pooled `DecodeScratch` — and their exactly-once/monotonicity claims
//! used to rest on lucky-schedule integration tests. This crate makes
//! those claims machine-checked: [`model`] runs a closure over and over,
//! each time forcing a *different* thread interleaving, until the bounded
//! schedule space is exhausted or an assertion fails.
//!
//! # How it works
//!
//! The harness is a cooperative scheduler over real OS threads: exactly
//! one model thread holds the *token* at any time, and every operation on
//! a shimmed primitive ([`sync::Mutex`], [`sync::Condvar`], the
//! [`sync::atomic`] types, [`thread::spawn`]/join) is a scheduling point
//! where the token may move. The sequence of scheduling decisions made
//! during one execution forms a decision vector; between executions the
//! driver advances that vector depth-first (replay a prefix, flip the
//! last non-exhausted choice), so the same closure is driven through
//! every reachable interleaving — bounded by a CHESS-style preemption
//! budget ([`ModelConfig::max_preemptions`]) that keeps the space
//! polynomial while still covering the bug-bearing schedules.
//!
//! Because one thread runs at a time and every handoff goes through one
//! `Mutex`+`Condvar`, execution under the model is sequentially
//! consistent: the harness explores *interleavings*, not weak-memory
//! reorderings. Data-race and ordering-at-the-hardware-level coverage
//! comes from the Miri and ThreadSanitizer CI jobs; the division of
//! labour is written down in `DESIGN.md` §12.
//!
//! # Shape
//!
//! The shims are loom-shaped: `lf_check::sync::Mutex` has the
//! `std::sync::Mutex` API (including `PoisonError` on panicked owners),
//! so production code swaps its imports behind a `lf-check` cargo
//! feature and is otherwise untouched. Outside a [`model`] run the shims
//! pass straight through to `std`, so a feature-enabled build of a crate
//! still runs its ordinary tests unchanged.
//!
//! # Rules for model closures
//!
//! * Synchronize **only** through the shimmed types. A bare
//!   `std::sync::Mutex` shared between two model threads can block the
//!   OS thread while it holds the token and wedge the whole harness.
//! * Keep the closure small: the schedule space is exponential in the
//!   number of scheduling points before bounding. Two threads and a
//!   handful of operations each is the sweet spot.
//! * A panic (failed `assert!`) in any model thread is a *finding*: the
//!   run stops and [`ModelReport::failure`] carries the decision vector
//!   that reproduces it.

pub mod fixtures;
pub mod sched;
pub mod sync;
pub mod thread;

pub use sched::{model, model_with, Failure, ModelConfig, ModelReport};
