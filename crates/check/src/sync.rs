//! Loom-shaped `std::sync` stand-ins.
//!
//! Each type stores its data in the real `std` primitive and adds a
//! *logical* layer the scheduler controls: under a [`crate::model`] run,
//! lock ownership, condvar parking, and atomic accesses are scheduling
//! points, and blocking happens in the scheduler (where every
//! interleaving can be explored) rather than in the OS. Outside a model
//! run everything passes straight through to `std`, so production crates
//! compile against these types unconditionally when their `lf-check`
//! feature is on and behave identically in ordinary tests.
//!
//! Poisoning is preserved: the inner `std` mutex poisons when a model
//! thread dies holding the guard, and `lock`/`wait` surface the same
//! `std::sync::PoisonError` the real types do, so poison-recovery code
//! paths (`unwrap_or_else(PoisonError::into_inner)`) run unmodified
//! under the model.

use crate::sched::{self, Exec};
use std::fmt;
use std::sync::{Arc, OnceLock};

// Re-exported so call sites can import their whole `std::sync` surface
// from one place when they swap to the shims.
pub use std::sync::PoisonError;

/// `std::sync::LockResult`, spelled out for the shim guard type.
pub type LockResult<G> = Result<G, PoisonError<G>>;

/// A mutex whose blocking is visible to the model scheduler.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    /// Scheduler lock id, assigned lazily on first use inside a model.
    id: OnceLock<usize>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
            id: OnceLock::new(),
        }
    }

    fn model_id(&self, exec: &Exec) -> usize {
        *self.id.get_or_init(|| exec.new_lock())
    }

    /// Acquires the mutex, reporting poison like `std::sync::Mutex`.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match sched::current() {
            Some((exec, tid)) => {
                // The entry scheduling point: another thread may acquire
                // first, forcing this one down the contended path.
                exec.yield_point(tid);
                self.lock_model(&exec, tid)
            }
            None => self.wrap(self.inner.lock(), None),
        }
    }

    /// Model-mode acquire without the entry yield (used on the re-acquire
    /// after a condvar wake, which is already a scheduling event).
    fn lock_model(&self, exec: &Arc<Exec>, tid: usize) -> LockResult<MutexGuard<'_, T>> {
        let id = self.model_id(exec);
        exec.acquire(id, tid);
        // The scheduler granted exclusivity, so the inner lock is
        // uncontended — it only carries the data and the poison bit.
        self.wrap(self.inner.lock(), Some((Arc::clone(exec), tid, id)))
    }

    fn wrap<'a>(
        &'a self,
        r: std::sync::LockResult<std::sync::MutexGuard<'a, T>>,
        model: Option<(Arc<Exec>, usize, usize)>,
    ) -> LockResult<MutexGuard<'a, T>> {
        match r {
            Ok(g) => Ok(MutexGuard {
                mutex: self,
                inner: Some(g),
                model,
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                mutex: self,
                inner: Some(p.into_inner()),
                model,
            })),
        }
    }
}

/// An RAII guard over a [`Mutex`]; releases the logical lock on drop.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    /// `None` only transiently inside `Condvar::wait`, which owns the
    /// guard at that point — user code never observes it empty.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    /// `(exec, tid, lock id)` in model mode; `None` in passthrough.
    model: Option<(Arc<Exec>, usize, usize)>,
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((exec, tid, id)) = self.model.take() {
            // Logical release first, physical unlock as `inner` drops just
            // after: no other thread can run in between (this thread holds
            // the token until its next scheduling point), so the gap is
            // unobservable.
            exec.release(id, tid);
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    // Invariant: `inner` is only vacated while `Condvar::wait` owns the
    // guard, so a deref can never see `None`.
    #[allow(clippy::unwrap_used)]
    fn deref(&self) -> &T {
        self.inner.as_deref().unwrap()
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    // Same invariant as `deref`.
    #[allow(clippy::unwrap_used)]
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().unwrap()
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("MutexGuard").field(&**self).finish()
    }
}

/// A condition variable whose parking is visible to the model scheduler.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
    id: OnceLock<usize>,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
            id: OnceLock::new(),
        }
    }

    /// Releases the guard's mutex, parks until notified, re-acquires.
    ///
    /// In model mode the release and the park happen without an
    /// intervening scheduling point, so the no-lost-wakeup guarantee of
    /// the real condvar is preserved exactly.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        if let Some((exec, tid, _lock_id)) = guard.model.clone() {
            let cv = *self.id.get_or_init(|| exec.new_cv());
            let mutex = guard.mutex;
            drop(guard); // logical release + physical unlock, no yield
            exec.cv_park(cv, tid);
            mutex.lock_model(&exec, tid)
        } else {
            let mutex = guard.mutex;
            let std_guard = guard.inner.take();
            drop(guard); // model is None and inner is None: a no-op drop
            match std_guard {
                Some(g) => match self.inner.wait(g) {
                    Ok(g) => Ok(MutexGuard {
                        mutex,
                        inner: Some(g),
                        model: None,
                    }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        mutex,
                        inner: Some(p.into_inner()),
                        model: None,
                    })),
                },
                // Unreachable in practice (the guard always carries its
                // inner lock); behave like a spurious wakeup rather than
                // panicking inside the harness.
                None => mutex.lock(),
            }
        }
    }

    /// Wakes one waiter. In model mode, *which* waiter is a scheduling
    /// decision the driver explores.
    pub fn notify_one(&self) {
        match sched::current() {
            Some((exec, tid)) => {
                let cv = *self.id.get_or_init(|| exec.new_cv());
                exec.notify_one(cv, tid);
            }
            None => self.inner.notify_one(),
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        match sched::current() {
            Some((exec, tid)) => {
                let cv = *self.id.get_or_init(|| exec.new_cv());
                exec.notify_all_waiters(cv, tid);
            }
            None => self.inner.notify_all(),
        }
    }
}

/// Atomics whose every access is a model scheduling point.
///
/// Under the cooperative scheduler execution is sequentially consistent,
/// so the `Ordering` argument is accepted (keeping call sites identical
/// to `std`) but does not weaken anything: the model explores
/// interleavings, not hardware reorderings — Miri and TSan cover those.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::sched;

    fn interleave() {
        if let Some((exec, tid)) = sched::current() {
            exec.yield_point(tid);
        }
    }

    macro_rules! shim_atomic {
        ($name:ident, $std:ty, $prim:ty, $($extra:tt)*) => {
            /// A model-aware drop-in for the `std` atomic of the same name.
            #[derive(Debug, Default)]
            pub struct $name($std);

            impl $name {
                /// Creates a new atomic holding `v`.
                pub const fn new(v: $prim) -> Self {
                    Self(<$std>::new(v))
                }

                /// Loads the value (a scheduling point under the model).
                pub fn load(&self, order: Ordering) -> $prim {
                    interleave();
                    self.0.load(order)
                }

                /// Stores `v` (a scheduling point under the model).
                pub fn store(&self, v: $prim, order: Ordering) {
                    interleave();
                    self.0.store(v, order);
                }

                /// Swaps in `v`, returning the previous value.
                pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                    interleave();
                    self.0.swap(v, order)
                }

                /// Atomic compare-exchange, as in `std`.
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    interleave();
                    self.0.compare_exchange(current, new, success, failure)
                }

                shim_atomic!(@extra $prim, $($extra)*);
            }
        };
        (@extra $prim:ty, arith) => {
            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                interleave();
                self.0.fetch_add(v, order)
            }

            /// Atomic subtract, returning the previous value.
            pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                interleave();
                self.0.fetch_sub(v, order)
            }

            /// Atomic minimum, returning the previous value.
            pub fn fetch_min(&self, v: $prim, order: Ordering) -> $prim {
                interleave();
                self.0.fetch_min(v, order)
            }

            /// Atomic maximum, returning the previous value.
            pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                interleave();
                self.0.fetch_max(v, order)
            }
        };
        (@extra $prim:ty, bool) => {
            /// Atomic logical OR, returning the previous value.
            pub fn fetch_or(&self, v: $prim, order: Ordering) -> $prim {
                interleave();
                self.0.fetch_or(v, order)
            }

            /// Atomic logical AND, returning the previous value.
            pub fn fetch_and(&self, v: $prim, order: Ordering) -> $prim {
                interleave();
                self.0.fetch_and(v, order)
            }
        };
    }

    shim_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64, arith);
    shim_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize, arith);
    shim_atomic!(AtomicI64, std::sync::atomic::AtomicI64, i64, arith);
    shim_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool, bool);
}
