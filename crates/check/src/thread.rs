//! `std::thread` stand-ins that register spawned threads with the model
//! scheduler. Outside a model run they are plain `std::thread` wrappers.

use crate::sched;
use std::sync::Arc;

/// A handle to a spawned (possibly model-scheduled) thread.
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<Option<T>>,
    /// The model thread id, `None` when spawned outside a model run.
    target: Option<usize>,
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle")
            .field("target", &self.target)
            .finish()
    }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its value. Joining is
    /// a blocking operation the model scheduler sees, so a join cycle is
    /// reported as a deadlock rather than hanging the harness.
    pub fn join(self) -> std::thread::Result<T> {
        if let (Some(target), Some((exec, tid))) = (self.target, sched::current()) {
            // Logical join first: the OS-level join below then completes
            // promptly (the finished thread only has to return).
            exec.join(target, tid);
        }
        match self.inner.join() {
            Ok(Some(v)) => Ok(v),
            Ok(None) => Err(Box::new("model thread panicked")),
            Err(e) => Err(e),
        }
    }
}

/// Spawns a thread. Inside a model run the new thread is registered with
/// the scheduler and only runs when it is handed the token; the spawn
/// itself is a scheduling point (the child may run before the parent
/// continues — or long after).
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match sched::current() {
        Some((exec, my_tid)) => {
            let tid = exec.register_thread();
            let e2 = Arc::clone(&exec);
            let inner = std::thread::spawn(move || sched::run_model_thread(&e2, tid, f));
            exec.yield_point(my_tid);
            JoinHandle {
                inner,
                target: Some(tid),
            }
        }
        None => JoinHandle {
            inner: std::thread::spawn(move || Some(f())),
            target: None,
        },
    }
}
