//! The harness's own acceptance suite: every seeded bug fixture must be
//! *found* within the default bounds, every corrected twin must exhaust
//! its bounded schedule space cleanly, and deadlocks must be reported
//! rather than hung on. This is what makes a green model run elsewhere
//! in the workspace meaningful.

use lf_check::{fixtures, model_with, ModelConfig};

fn cfg() -> ModelConfig {
    ModelConfig::default()
}

#[test]
fn finds_the_lost_update() {
    let report = model_with(cfg(), fixtures::lost_update_round);
    let failure = report.failure.expect("lost update not found");
    assert!(
        failure.message.contains("lost update"),
        "unexpected failure: {}",
        failure.message
    );
    // The failing schedule is pinned down, not just "something failed":
    // the decision vector replays to the same assertion.
    assert!(!failure.schedule.is_empty());
}

#[test]
fn atomic_update_twin_is_clean_and_exhausted() {
    let report = model_with(cfg(), fixtures::atomic_update_round);
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.exhausted,
        "schedule space not exhausted in {} executions",
        report.iterations
    );
    // Sanity: there was a real space to explore, not a degenerate one.
    assert!(
        report.iterations > 1,
        "only {} executions",
        report.iterations
    );
}

#[test]
fn finds_the_if_wait_bug() {
    let report = model_with(cfg(), fixtures::if_wait_round);
    let failure = report.failure.expect("if-wait bug not found");
    assert!(
        failure.message.contains("woke without an item"),
        "unexpected failure: {}",
        failure.message
    );
}

#[test]
fn while_wait_twin_is_clean_and_exhausted() {
    let report = model_with(cfg(), fixtures::while_wait_round);
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.exhausted,
        "schedule space not exhausted in {} executions",
        report.iterations
    );
}

#[test]
fn reports_lock_inversion_as_deadlock() {
    let report = model_with(cfg(), fixtures::lock_inversion_round);
    let failure = report.failure.expect("deadlock not found");
    assert!(
        failure.message.contains("deadlock"),
        "unexpected failure: {}",
        failure.message
    );
}

#[test]
fn iteration_cap_is_respected() {
    let tight = ModelConfig {
        max_iterations: 3,
        max_preemptions: 2,
    };
    let report = model_with(tight, fixtures::while_wait_round);
    assert!(report.iterations <= 3);
    assert!(!report.exhausted);
}

#[test]
fn preemption_budget_bounds_the_space() {
    // With zero preemptions, threads only switch on voluntary blocking;
    // the lost update needs a preemption between load and store, so it
    // must NOT be found — demonstrating the bound is real.
    let none = ModelConfig {
        max_iterations: 50_000,
        max_preemptions: 0,
    };
    let report = model_with(none, fixtures::lost_update_round);
    assert!(
        report.failure.is_none(),
        "lost update needs a preemption, found anyway: {:?}",
        report.failure
    );
    assert!(report.exhausted);
}
