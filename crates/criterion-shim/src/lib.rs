//! A minimal wall-clock benchmark harness with a `criterion`-compatible
//! API surface.
//!
//! The workspace builds in hermetic environments with no crates.io
//! access, so the real `criterion` crate is unavailable. This crate
//! implements the subset its benches use — [`Criterion`],
//! [`criterion_group!`], [`criterion_main!`], [`BenchmarkId`], benchmark
//! groups, and `Bencher::iter` — and is aliased to the name `criterion`
//! in the workspace manifest so bench files read identically to
//! upstream.
//!
//! Measurement is deliberately simple: a short warm-up, then timed
//! batches until a fixed wall-clock budget is spent, reporting the mean
//! time per iteration. There is no statistical analysis or HTML report;
//! the numbers are for tracking relative movement between commits.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Wall-clock budget spent measuring each benchmark (after warm-up).
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Wall-clock budget spent warming each benchmark up.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
        }
    }
}

/// A named family of benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Runs one benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Finishes the group (upstream emits summary artifacts here; the
    /// shim has nothing left to do).
    pub fn finish(self) {}
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", function.into()))
    }

    /// An id that is just the display of a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

/// Times closures, mirroring `criterion::Bencher`.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Repeatedly times `routine`, keeping its return value alive so the
    /// optimizer cannot discard the computation.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also sizes one batch so each timed batch is long
        // enough for the clock to resolve.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let batch = warm_iters.max(1);

        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < MEASURE_BUDGET {
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            iters += batch;
        }
        self.iters = iters;
        self.total = start.elapsed();
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<44} (no iterations recorded)");
            return;
        }
        let per_iter = self.total.as_nanos() / u128::from(self.iters);
        println!(
            "{name:<44} {:>12} ns/iter  ({} iters in {:?})",
            per_iter, self.iters, self.total
        );
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_run_with_inputs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| n * 2);
        });
        g.finish();
    }
}
